"""The observability pipeline hub.

An :class:`Observer` is the single object a run attaches to a testbed
to see everything the paper's measurement methodology sees — and more:

* it installs :class:`~repro.obs.hooks.SimHooks` on the simulator, so
  CPU context activity (hardware interrupts preempting softints
  preempting processes) becomes timeline slices;
* it owns the run's :class:`~repro.obs.metrics.MetricsRegistry` and
  hands each host a scoped view (``client.*`` / ``server.*``);
* it sinks :class:`~repro.sim.trace.SpanTracer` spans (the paper's
  ``tx.user`` ... ``rx.wakeup`` rows) and
  :class:`~repro.core.packetlog.PacketLog` packets into the same event
  stream;
* it snapshots final stats (adapter counters, CPU cycles profile, TCP
  layer counters) when :meth:`collect` is called at end of run.

Exporters (:mod:`repro.obs.export`) turn the accumulated state into a
Chrome ``trace_event`` file, a JSONL event stream, or a plain-text
metrics dump.

Everything here is opt-in: constructing a testbed without an observer
leaves ``Simulator.hooks`` and every ``metrics`` attribute ``None``,
and the simulated timeline is byte-identical to the seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.hooks import SimHooks
from repro.obs.metrics import MetricsRegistry

__all__ = ["Observer", "CpuTraceHooks", "TID_HARD_INTR", "TID_SOFT_INTR",
           "TID_KERNEL", "TID_USER", "TID_SPANS", "TID_NET",
           "span_tid"]

#: Chrome-trace thread ids: one per simulated CPU context, matching
#: :class:`repro.sim.cpu.Priority` (so preemption nests visually), plus
#: synthetic lanes for latency spans and wire packets.
TID_HARD_INTR = 0
TID_SOFT_INTR = 1
TID_KERNEL = 2
TID_USER = 3
TID_SPANS = 8
TID_NET = 9

#: Per-layer span lanes: each protocol layer renders as its own named
#: "thread" in Perfetto, so one RTT reads top-to-bottom as the paper's
#: Figure 1 stack walk.  ATM and Ethernet drivers share a lane (a host
#: has one interface); spans that fit no layer fall back to TID_SPANS.
TID_LAYER_USER = 10
TID_LAYER_TCP = 11
TID_LAYER_IP = 12
TID_LAYER_DRIVER = 13
TID_LAYER_IPQ = 14
TID_LAYER_WAKEUP = 15
TID_LAYER_WIRE = 16

_LAYER_TIDS = {
    "user": TID_LAYER_USER,
    "tcp": TID_LAYER_TCP,
    "ip": TID_LAYER_IP,
    "atm": TID_LAYER_DRIVER,
    "ether": TID_LAYER_DRIVER,
    "ipq": TID_LAYER_IPQ,
    "wakeup": TID_LAYER_WAKEUP,
    "wire": TID_LAYER_WIRE,
}

TID_NAMES = {
    TID_HARD_INTR: "cpu:hard_intr",
    TID_SOFT_INTR: "cpu:soft_intr",
    TID_KERNEL: "cpu:kernel",
    TID_USER: "cpu:user",
    TID_SPANS: "spans",
    TID_NET: "net",
    TID_LAYER_USER: "layer:user",
    TID_LAYER_TCP: "layer:tcp",
    TID_LAYER_IP: "layer:ip",
    TID_LAYER_DRIVER: "layer:driver",
    TID_LAYER_IPQ: "layer:ipq",
    TID_LAYER_WAKEUP: "layer:wakeup",
    TID_LAYER_WIRE: "layer:wire",
}


def span_tid(name: str) -> int:
    """Map a span name (``rx.ack.tcp.segment``) to its layer lane."""
    for part in name.split("."):
        if part in ("tx", "rx", "ack"):
            continue
        return _LAYER_TIDS.get(part, TID_SPANS)
    return TID_SPANS


class CpuTraceHooks(SimHooks):
    """SimHooks implementation feeding an :class:`Observer`.

    CPU job lifecycle becomes complete ("X") slices on the per-context
    thread of the owning host; engine lifecycle becomes counters.  A
    job's slice is opened at start/resume and closed at preempt/finish,
    so a preempted copy shows up as two slices with the interrupt's
    slice between them — the paper's "interrupt steals cycles from a
    user process mid-copy" picture, literally visible in Perfetto.
    """

    def __init__(self, observer: "Observer"):
        self.observer = observer
        #: (cpu name, priority) -> (job name, slice start ns)
        self._open: Dict[Tuple[str, int], Tuple[str, int]] = {}

    # --- engine -------------------------------------------------------
    def on_schedule(self, now_ns: int, call: Any) -> None:
        self.observer.metrics.inc("sim.scheduled")

    def on_dispatch(self, now_ns: int, call: Any) -> None:
        self.observer.metrics.inc("sim.dispatched")

    def on_process_start(self, now_ns: int, process: Any) -> None:
        self.observer.metrics.inc("sim.processes_started")

    def on_process_end(self, now_ns: int, process: Any) -> None:
        self.observer.metrics.inc("sim.processes_finished")

    # --- CPU ----------------------------------------------------------
    def on_job_start(self, now_ns: int, cpu: Any, job: Any) -> None:
        self._open[(cpu.name, job.priority)] = (job.name, now_ns)
        self.observer.metrics.set_max(f"{cpu.name}.runq_max",
                                      cpu.queue_depth())

    def on_job_resume(self, now_ns: int, cpu: Any, job: Any) -> None:
        self._open[(cpu.name, job.priority)] = (job.name, now_ns)

    def on_job_preempt(self, now_ns: int, cpu: Any, job: Any) -> None:
        self.observer.metrics.inc(f"{cpu.name}.preemptions")
        self._close(now_ns, cpu, job, preempted=True)

    def on_job_finish(self, now_ns: int, cpu: Any, job: Any) -> None:
        self._close(now_ns, cpu, job, preempted=False)

    def _close(self, now_ns: int, cpu: Any, job: Any,
               preempted: bool) -> None:
        opened = self._open.pop((cpu.name, job.priority), None)
        if opened is None:
            return
        name, start_ns = opened
        self.observer.emit_slice(
            pid=self.observer.pid_for_cpu(cpu.name),
            tid=job.priority, name=name, cat="cpu",
            start_ns=start_ns, end_ns=now_ns,
            args={"preempted": True} if preempted else None,
        )


class Observer:
    """Collects one run's trace events, metrics, spans and packets."""

    def __init__(self, capture_packets: bool = True,
                 lineage: bool = False, flow: bool = False):
        self.metrics = MetricsRegistry()
        #: Chrome-format event dicts (ts/dur in float microseconds).
        self.trace_events: List[dict] = []
        #: host name -> merged span snapshot (see SpanTracer.snapshot).
        self.spans: Dict[str, Dict[str, dict]] = {}
        self.capture_packets = capture_packets
        self.packet_log = None  # created on attach when capturing
        #: Causal packet lineage (repro.obs.lineage); one recorder is
        #: shared by every attached host so cross-wire correlation (tx
        #: record matched on the rx side) needs no extra plumbing.
        self.lineage = None
        #: Per-connection flow telemetry (repro.obs.flow).
        self.flow = None
        if lineage:
            from repro.obs.lineage import LineageRecorder
            self.lineage = LineageRecorder()
        if flow:
            from repro.obs.flow import FlowTelemetry
            self.flow = FlowTelemetry()
        self.hooks = CpuTraceHooks(self)
        self.testbeds: List[Any] = []
        self._pids: Dict[str, int] = {}       # host name -> pid
        self._pid_by_cpu: Dict[str, int] = {}  # cpu name -> pid

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, testbed) -> "Observer":
        """Wire this observer into a testbed (before running it)."""
        testbed.sim.set_hooks(self.hooks)
        testbed.observer = self
        for host in testbed.hosts:
            self.attach_host(host)
        if self.capture_packets:
            from repro.core.packetlog import attach_packet_log
            self.packet_log = attach_packet_log(testbed, observer=self)
        self.testbeds.append(testbed)
        return self

    def attach_host(self, host) -> None:
        """Give one host a metrics scope and a span sink."""
        pid = self._pids.get(host.name)
        if pid is None:
            pid = self._pids[host.name] = len(self._pids) + 1
            self._emit_metadata(pid, host.name)
        self._pid_by_cpu[host.cpu.name] = pid
        host.observer = self
        scoped = self.metrics.scope(host.name)
        host.metrics = scoped
        host.softnet.metrics = scoped
        host.scheduler.metrics = scoped
        host.pool.metrics = scoped
        if self.lineage is not None:
            host.lineage = self.lineage
            host.scheduler.lineage = self.lineage
            host.softnet.lineage = self.lineage
        if self.flow is not None:
            host.flow = self.flow

        def span_sink(name: str, duration_us: float, end_us: float,
                      _pid: int = pid) -> None:
            self.on_span(_pid, name, duration_us, end_us)

        host.tracer.sink = span_sink

    def pid_for_cpu(self, cpu_name: str) -> int:
        return self._pid_by_cpu.get(cpu_name, 0)

    def pid_for_host(self, host_name: str) -> int:
        return self._pids.get(host_name, 0)

    # ------------------------------------------------------------------
    # Sinks (called by hooks / SpanTracer / PacketLog)
    # ------------------------------------------------------------------
    def emit_slice(self, pid: int, tid: int, name: str, cat: str,
                   start_ns: int, end_ns: int,
                   args: Optional[dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": start_ns / 1000.0,
                 "dur": (end_ns - start_ns) / 1000.0,
                 "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self.trace_events.append(event)

    def emit_instant(self, pid: int, tid: int, name: str, cat: str,
                     ts_ns: float, args: Optional[dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "i", "s": "t",
                 "ts": ts_ns / 1000.0, "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self.trace_events.append(event)

    def on_span(self, pid: int, name: str, duration_us: float,
                end_us: float) -> None:
        """A SpanTracer recorded one latency span."""
        self.trace_events.append({
            "name": name, "cat": "span", "ph": "X",
            "ts": end_us - duration_us, "dur": duration_us,
            "pid": pid, "tid": span_tid(name),
        })

    def on_packet(self, packet_event) -> None:
        """A PacketLog recorded one wire observation."""
        pid = self.pid_for_host(packet_event.host)
        self.metrics.inc(
            f"{packet_event.host}.packets.{packet_event.direction}")
        self.emit_instant(
            pid, TID_NET,
            f"{packet_event.direction} {packet_event.flags_text}"
            f" len={packet_event.payload_len}",
            cat="net", ts_ns=packet_event.time_us * 1000.0,
            args={"src": packet_event.src, "dst": packet_event.dst,
                  "seq": packet_event.seq, "ack": packet_event.ack,
                  "len": packet_event.payload_len},
        )

    def _emit_metadata(self, pid: int, host_name: str) -> None:
        self.trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0.0, "args": {"name": host_name}})
        for tid, tname in TID_NAMES.items():
            self.trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "ts": 0.0, "args": {"name": tname}})
            self.trace_events.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid,
                "tid": tid, "ts": 0.0, "args": {"sort_index": tid}})

    # ------------------------------------------------------------------
    # End-of-run collection
    # ------------------------------------------------------------------
    def collect(self, testbed=None) -> None:
        """Fold final per-host state into metrics and span snapshots.

        Safe to call repeatedly and across testbeds (multi-run
        aggregation): span snapshots merge rather than overwrite.
        """
        from repro.core.profile import profile_to_metrics
        testbeds = [testbed] if testbed is not None else self.testbeds
        for tb in testbeds:
            for host in tb.hosts:
                scoped = self.metrics.scope(host.name)
                self.merge_spans(host.name, host.tracer.snapshot())
                profile_to_metrics(host, scoped)
                scoped.set_gauge("cpu.busy_us", host.cpu.busy_ns / 1000.0)
                scoped.set_gauge("cpu.jobs_completed",
                                 host.cpu.jobs_completed)
                scoped.set_gauge("cpu.preemptions", host.cpu.preemptions)
                scoped.set_gauge("ipq.dispatched", host.softnet.dispatched)
                scoped.set_gauge("ipq.dropped_full",
                                 host.softnet.dropped_full)
                iface = host.interface
                if iface is not None and hasattr(iface, "stats"):
                    stats = iface.stats
                    for field in stats.__slots__:
                        scoped.set_gauge(f"iface.{field}",
                                         getattr(stats, field))
                for field in host.tcp.stats.__slots__:
                    scoped.set_gauge(f"tcpstat.{field}",
                                     getattr(host.tcp.stats, field))
                for field in host.ip.stats.__slots__:
                    scoped.set_gauge(f"ipstat.{field}",
                                     getattr(host.ip.stats, field))
                # Input-validation drop totals (layer + per-connection),
                # the gauges fuzz oracles and operators key on.
                bad_segments = host.tcp.stats.bad_segments
                rst_dropped = host.tcp.stats.rst_dropped
                bad_options = host.tcp.stats.bad_options
                for conn in host.tcp.connections:
                    bad_segments += conn.stats.bad_segments
                    rst_dropped += conn.stats.rst_dropped
                    bad_options += conn.stats.bad_options
                scoped.set_gauge("tcp.bad_segments", bad_segments)
                scoped.set_gauge("tcp.rst_dropped", rst_dropped)
                scoped.set_gauge("tcp.bad_options", bad_options)
                scoped.set_gauge("ip.bad_headers", host.ip.stats.bad_headers)
            impairments = getattr(tb.link, "impairments", None)
            if impairments is not None:
                # Injected-impairment totals (link-wide, not per host).
                for name, value in impairments.stats.as_dict().items():
                    self.metrics.set_gauge(f"chaos.{name}", value)

    def merge_spans(self, host_name: str,
                    snapshot: Dict[str, dict]) -> None:
        """Merge a SpanTracer snapshot into this observer's aggregate."""
        dst = self.spans.setdefault(host_name, {})
        for name, stats in snapshot.items():
            cur = dst.get(name)
            if cur is None:
                dst[name] = dict(stats)
                continue
            total_count = cur["count"] + stats["count"]
            cur["total_us"] += stats["total_us"]
            if stats["count"]:
                if cur["count"] == 0:
                    cur["min_us"] = stats["min_us"]
                    cur["max_us"] = stats["max_us"]
                else:
                    cur["min_us"] = min(cur["min_us"], stats["min_us"])
                    cur["max_us"] = max(cur["max_us"], stats["max_us"])
            cur["count"] = total_count
            cur["mean_us"] = (cur["total_us"] / total_count
                              if total_count else 0.0)
