"""Unified observability for the simulated stack.

One pipeline behind all instrumentation, mirroring the paper's method
of reading a 40 ns clock at layer boundaries — but exportable:

* :mod:`repro.obs.hooks` — the :class:`SimHooks` protocol the event
  kernel and CPU model fire (``NoopHooks``/``None`` = zero overhead);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms incremented throughout TCP/IP/driver/scheduler code;
* :mod:`repro.obs.observer` — the :class:`Observer` that attaches to a
  testbed and accumulates slices, spans, packets and metrics;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto),
  JSONL streams, plain-text and CSV dumps;
* :mod:`repro.obs.lineage` — causal packet lineage: every user write,
  TCP segment and socket delivery gets a record whose events trace the
  bytes through mbuf copies, segmentation, IP, the driver, the wire,
  the receive interrupt, IPQ, the socket wakeup and the user copy;
* :mod:`repro.obs.flow` — per-connection flow telemetry (cwnd, rtt
  estimators, retransmit state) sampled at TCP state transitions;
* :mod:`repro.obs.explain` — the ``repro explain`` waterfall: one
  RTT decomposed into per-layer spans that sum to the measured time.

Quick use::

    from repro.obs import Observer, write_chrome_trace
    from repro.core.experiment import run_round_trip

    obs = Observer()
    run_round_trip(size=8000, observer=obs)
    write_chrome_trace(obs, "t2.json")   # open in ui.perfetto.dev

Import note: :mod:`repro.sim.engine` imports :mod:`repro.obs.hooks`,
so this ``__init__`` must only import modules with no dependency on
the simulation kernel (hooks, metrics); the rest load lazily.
"""

from repro.obs.hooks import NoopHooks, SimHooks
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedMetrics,
)

__all__ = [
    "SimHooks", "NoopHooks",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "ScopedMetrics",
    "Observer", "CpuTraceHooks",
    "chrome_trace", "write_chrome_trace", "trace_jsonl", "write_jsonl",
    "metrics_text", "metrics_csv", "span_table",
    "LineageRecorder", "FlowTelemetry",
    "run_traced", "explain_rtt", "write_rtt_trace", "diff_runs",
    "format_diff",
]

_LAZY = {
    "Observer": "repro.obs.observer",
    "CpuTraceHooks": "repro.obs.observer",
    "chrome_trace": "repro.obs.export",
    "write_chrome_trace": "repro.obs.export",
    "trace_jsonl": "repro.obs.export",
    "write_jsonl": "repro.obs.export",
    "metrics_text": "repro.obs.export",
    "metrics_csv": "repro.obs.export",
    "span_table": "repro.obs.export",
    "LineageRecorder": "repro.obs.lineage",
    "FlowTelemetry": "repro.obs.flow",
    "run_traced": "repro.obs.explain",
    "explain_rtt": "repro.obs.explain",
    "write_rtt_trace": "repro.obs.explain",
    "diff_runs": "repro.obs.explain",
    "format_diff": "repro.obs.explain",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value
