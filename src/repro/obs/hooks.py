"""Kernel hook interface: the root of the observability pipeline.

The simulation kernel (:mod:`repro.sim.engine`) and the CPU model
(:mod:`repro.sim.cpu`) expose their lifecycle through a single
:class:`SimHooks` object installed on the :class:`~repro.sim.engine.
Simulator`.  Downstream sinks — the :class:`~repro.obs.observer.
Observer` that builds Chrome traces, counters, test probes — subclass
:class:`SimHooks` and override only the callbacks they care about.

The default is *no hooks at all*: ``Simulator.hooks`` is ``None`` and
the kernel's hot loops guard every callback with a single ``is not
None`` test, so an uninstrumented run pays nothing and reproduces the
seed's event stream byte for byte.  :class:`NoopHooks` exists for call
sites that want an object to hand around; ``Simulator.set_hooks``
normalizes it back to ``None`` so even a "noop-hooked" run stays on the
zero-overhead path.

This module is dependency-free on purpose: the simulation kernel may
import it without creating an import cycle with the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

from typing import Any

__all__ = ["SimHooks", "NoopHooks"]


class SimHooks:
    """Callbacks fired by the event kernel and the CPU model.

    All methods are no-ops in the base class; subclasses override a
    subset.  Hooks observe — they must not mutate simulator state, or
    determinism guarantees are void.

    Engine callbacks receive the :class:`~repro.sim.engine.
    ScheduledCall` / :class:`~repro.sim.engine.Process` involved; CPU
    callbacks receive the :class:`~repro.sim.cpu.CPU` and
    :class:`~repro.sim.cpu.Job`, so a sink can read names, priorities
    and queue depths without the kernel paying to format them.
    """

    # ------------------------------------------------------------------
    # Event-kernel lifecycle (repro.sim.engine)
    # ------------------------------------------------------------------
    def on_schedule(self, now_ns: int, call: Any) -> None:
        """A callback was pushed on the event queue."""

    def on_dispatch(self, now_ns: int, call: Any) -> None:
        """A callback is about to execute (clock already advanced)."""

    def on_process_start(self, now_ns: int, process: Any) -> None:
        """A generator process was created."""

    def on_process_end(self, now_ns: int, process: Any) -> None:
        """A generator process finished (returned or raised)."""

    # ------------------------------------------------------------------
    # CPU-model lifecycle (repro.sim.cpu)
    # ------------------------------------------------------------------
    def on_job_start(self, now_ns: int, cpu: Any, job: Any) -> None:
        """A job got the CPU for the first time."""

    def on_job_preempt(self, now_ns: int, cpu: Any, job: Any) -> None:
        """The running job was preempted by a higher-priority arrival."""

    def on_job_resume(self, now_ns: int, cpu: Any, job: Any) -> None:
        """A previously preempted job got the CPU back."""

    def on_job_finish(self, now_ns: int, cpu: Any, job: Any) -> None:
        """The running job consumed all of its work."""


class NoopHooks(SimHooks):
    """Explicit do-nothing hooks.

    Installing this (or ``None``) leaves the kernel on its unhooked
    fast path; it exists so APIs can take "a hooks object" uniformly.
    """

    __slots__ = ()
