"""Per-connection flow telemetry: TCP control-state time series.

Samples are taken at connection state transitions (establishment, ACK
advance, RTT sample, retransmission fire, persist probe, teardown) and
capture the variables the congestion-control literature plots over time:
``snd_cwnd``, ``snd_wnd``, the smoothed RTT estimate, the exponential
backoff shift, and the send-sequence frontier.  The stack reaches this
through the duck-typed ``host.flow`` attribute (``None`` unobserved), so
the zero-overhead contract holds.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional

__all__ = ["FlowSample", "FlowTelemetry"]


class FlowSample:
    """One point of one connection's control-state time series."""

    __slots__ = ("t_ns", "host", "local_port", "remote_port", "state",
                 "reason", "snd_cwnd", "snd_wnd", "srtt_us", "rttvar_us",
                 "rto_us", "rtx_shift", "snd_una_rel", "snd_nxt_rel",
                 "snd_max_rel", "rcv_nxt_rel", "persist_probes",
                 "retransmits")

    def __init__(self, **kw) -> None:
        for name in self.__slots__:
            setattr(self, name, kw[name])

    def as_dict(self) -> Dict:
        return {name: getattr(self, name) for name in self.__slots__}


class FlowTelemetry:
    """Collects :class:`FlowSample` rows across every observed host."""

    def __init__(self) -> None:
        self.samples: List[FlowSample] = []
        self._mark = 0

    def sample(self, conn, reason: str) -> FlowSample:
        """Snapshot *conn* (a :class:`~repro.tcp.conn.TCPConnection`)."""
        row = FlowSample(
            t_ns=conn.host.sim.now,
            host=conn.host.name,
            local_port=conn.pcb.local_port,
            remote_port=conn.pcb.remote_port,
            state=conn.state.value,
            reason=reason,
            snd_cwnd=conn.snd_cwnd,
            snd_wnd=conn.snd_wnd,
            srtt_us=conn.srtt_us,
            rttvar_us=conn.rttvar_us,
            rto_us=conn.rto_us,
            rtx_shift=conn._rtx_shift,
            snd_una_rel=(conn.snd_una - conn.iss) & 0xFFFFFFFF,
            snd_nxt_rel=(conn.snd_nxt - conn.iss) & 0xFFFFFFFF,
            snd_max_rel=(conn.snd_max - conn.iss) & 0xFFFFFFFF,
            rcv_nxt_rel=((conn.rcv_nxt - conn.irs) & 0xFFFFFFFF
                         if conn.irs else 0),
            persist_probes=conn.stats.persist_probes,
            retransmits=conn.stats.retransmits,
        )
        self.samples.append(row)
        return row

    # ------------------------------------------------------------------
    # Warmup boundary + export
    # ------------------------------------------------------------------
    def mark(self) -> None:
        self._mark = len(self.samples)

    def measured_samples(self) -> List[FlowSample]:
        return self.samples[self._mark:]

    def jsonl_lines(self, measured_only: bool = False) -> Iterator[str]:
        rows = self.measured_samples() if measured_only else self.samples
        for row in rows:
            yield json.dumps(row.as_dict(), sort_keys=True)

    def write_jsonl(self, path: str,
                    measured_only: bool = False) -> int:
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.jsonl_lines(measured_only):
                fh.write(line + "\n")
                n += 1
        return n

    def for_connection(self, host: Optional[str] = None,
                       local_port: Optional[int] = None
                       ) -> List[FlowSample]:
        return [s for s in self.samples
                if (host is None or s.host == host)
                and (local_port is None or s.local_port == local_port)]
