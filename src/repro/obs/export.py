"""Exporters: Chrome ``trace_event`` JSON, JSONL streams, text dumps.

Three ways out of an :class:`~repro.obs.observer.Observer`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (one JSON object with a ``traceEvents``
  array), loadable in ``chrome://tracing`` or https://ui.perfetto.dev.
  Each simulated host is a "process"; each CPU context
  (hard_intr > soft_intr > kernel > user) is a "thread", so interrupt
  preemption renders as nested timeline slices; the paper's latency
  spans (``tx.user``, ``rx.ipq``, ...) get their own lane.
* :func:`trace_jsonl` / :func:`write_jsonl` — one JSON object per
  line: every trace event, then the metrics snapshot and per-host span
  aggregates, for ad-hoc ``jq``/pandas analysis.
* :func:`metrics_text` — the plain-text dump behind
  ``python -m repro metrics``: counters, gauges, histograms, and the
  per-host span table in the paper's microseconds.
"""

from __future__ import annotations

import json
from typing import Iterator, List

__all__ = ["chrome_trace", "write_chrome_trace", "trace_jsonl",
           "write_jsonl", "metrics_text", "metrics_csv", "span_table"]


def _sorted_events(observer) -> List[dict]:
    """Trace events sorted by timestamp (metadata first), stably.

    Chrome's importer tolerates unsorted input but Perfetto warns and
    per-tid slice queries want non-decreasing ``ts``; sorting here also
    gives exporters a deterministic byte stream for identical runs.
    """
    metadata = [e for e in observer.trace_events if e.get("ph") == "M"]
    rest = [e for e in observer.trace_events if e.get("ph") != "M"]
    rest.sort(key=lambda e: e["ts"])  # stable: ties keep emit order
    return metadata + rest


def chrome_trace(observer) -> dict:
    """The full ``trace_event`` document for one observed run."""
    return {
        "traceEvents": _sorted_events(observer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulated-ns (ts in us)",
        },
    }


def write_chrome_trace(observer, path: str) -> int:
    """Write the Chrome trace JSON; returns the number of events."""
    doc = chrome_trace(observer)
    with open(path, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return len(doc["traceEvents"])


def trace_jsonl(observer) -> Iterator[str]:
    """Yield the run as JSON lines: events, then summary records."""
    for event in _sorted_events(observer):
        yield json.dumps({"type": "event", **event},
                         separators=(",", ":"))
    yield json.dumps({"type": "metrics", **observer.metrics.snapshot()},
                     separators=(",", ":"))
    for host_name, spans in sorted(observer.spans.items()):
        yield json.dumps({"type": "spans", "host": host_name,
                          "spans": spans}, separators=(",", ":"))


def write_jsonl(observer, path: str) -> int:
    """Write the JSONL event stream; returns the number of lines."""
    n = 0
    with open(path, "w") as fh:
        for line in trace_jsonl(observer):
            fh.write(line)
            fh.write("\n")
            n += 1
    return n


def span_table(observer) -> str:
    """Per-host span aggregates formatted like the paper's tables."""
    lines: List[str] = []
    for host_name, spans in sorted(observer.spans.items()):
        lines.append(f"== spans: {host_name} ==")
        lines.append(f"{'span':<24} {'count':>6} {'mean_us':>9} "
                     f"{'min_us':>9} {'max_us':>9} {'total_us':>10}")
        for name in sorted(spans):
            s = spans[name]
            lines.append(
                f"{name:<24} {s['count']:>6} {s['mean_us']:>9.1f} "
                f"{s['min_us']:>9.1f} {s['max_us']:>9.1f} "
                f"{s['total_us']:>10.1f}")
    return "\n".join(lines)


def metrics_csv(observer) -> str:
    """Metrics and span aggregates as flat CSV (``metrics --format=csv``).

    One row per datum: ``kind,name,field,value``.  Counters get a
    single ``value`` row; gauges get ``value`` and ``max``; histograms
    get ``count``/``sum``/``mean``; spans are scoped ``host.span`` names
    with the snapshot's five statistics.  Keys are sorted, so the byte
    stream is deterministic for identical runs.
    """
    snap = observer.metrics.snapshot()
    rows: List[str] = ["kind,name,field,value"]

    def emit(kind: str, name: str, field: str, value) -> None:
        rows.append(f"{kind},{name},{field},{value:g}")

    for name, value in snap["counters"].items():
        emit("counter", name, "value", value)
    for name, g in snap["gauges"].items():
        emit("gauge", name, "value", g["value"])
        emit("gauge", name, "max", g["max"])
    for name, h in snap["histograms"].items():
        emit("histogram", name, "count", h["count"])
        emit("histogram", name, "sum", h["sum"])
        emit("histogram", name, "mean", h["mean"])
    for host_name, spans in sorted(observer.spans.items()):
        for span_name in sorted(spans):
            s = spans[span_name]
            for field in ("count", "mean_us", "min_us", "max_us",
                          "total_us"):
                emit("span", f"{host_name}.{span_name}", field, s[field])
    return "\n".join(rows)


def metrics_text(observer) -> str:
    """The complete plain-text dump: metrics plus span tables."""
    parts = [observer.metrics.format_text()]
    spans = span_table(observer)
    if spans:
        parts.append(spans)
    return "\n".join(p for p in parts if p)
