"""Metrics registry: counters, gauges and fixed-bucket histograms.

The time-series side of the observability pipeline (the latency *spans*
live in :class:`repro.sim.trace.SpanTracer`; this module holds
everything countable).  Instrumentation points throughout the stack —
TCP segments in/out, header-prediction hits, IP input-queue drops,
cells and interrupts per interface, context switches — increment
metrics on their host's :class:`ScopedMetrics` view, all of which share
one :class:`MetricsRegistry` so a run's numbers export together.

Every instrumentation point is guarded by an ``is not None`` check on
the host's ``metrics`` attribute, so the default (unobserved) run pays
a single attribute read per site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "ScopedMetrics", "DEFAULT_BUCKETS_US"]

#: Default histogram buckets, tuned for microsecond latencies (the
#: paper's spans run from ~1 us to ~10 ms).
DEFAULT_BUCKETS_US: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value; also tracks the maximum ever set."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def set_max(self, value: float) -> None:
        """Raise the gauge to *value* if it is a new high-water mark."""
        if value > self.value:
            self.set(value)

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value} max={self.max_value}>"


class Histogram:
    """Fixed upper-bound buckets plus count/sum (Prometheus-style).

    ``counts[i]`` is the number of observations ``<= bounds[i]``
    (non-cumulative); observations beyond the last bound land in the
    implicit overflow bucket ``counts[-1]``.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS_US):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted, non-empty")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} n={self.count} "
                f"mean={self.mean:.1f}>")


class MetricsRegistry:
    """All metrics of one observed run, keyed by dotted name.

    Host-level instrumentation goes through :meth:`scope`, which
    prefixes names (``client.tcp.segs_in``) while sharing this
    registry, so one export covers every host on the testbed.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS_US
                  ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # ------------------------------------------------------------------
    # One-shot conveniences (what instrumentation sites call)
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def set_max(self, name: str, value: float) -> None:
        self.gauge(name).set_max(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def scope(self, prefix: str) -> "ScopedMetrics":
        """A view that prefixes every name with ``prefix + '.'``."""
        return ScopedMetrics(self, prefix)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def value(self, name: str) -> Optional[float]:
        """The current value of a counter or gauge (None if unknown)."""
        if name in self._counters:
            return float(self._counters[name].value)
        if name in self._gauges:
            return self._gauges[name].value
        return None

    def snapshot(self) -> dict:
        """A plain-data dump, JSON-serializable as-is."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: {"value": g.value, "max": g.max_value}
                       for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"count": h.count, "sum": h.total, "mean": h.mean,
                    "bounds": list(h.bounds), "counts": list(h.counts)}
                for n, h in sorted(self._histograms.items())
            },
        }

    def format_text(self) -> str:
        """The plain-text metrics dump (``python -m repro metrics``)."""
        lines: List[str] = []
        if self._counters:
            lines.append("== counters ==")
            for name, c in sorted(self._counters.items()):
                lines.append(f"{name:<44} {c.value}")
        if self._gauges:
            lines.append("== gauges ==")
            for name, g in sorted(self._gauges.items()):
                lines.append(f"{name:<44} {g.value:g} (max {g.max_value:g})")
        if self._histograms:
            lines.append("== histograms ==")
            for name, h in sorted(self._histograms.items()):
                lines.append(f"{name:<44} count={h.count} "
                             f"sum={h.total:.1f} mean={h.mean:.1f}")
                if h.count:
                    cells = [f"<={b:g}:{n}" for b, n
                             in zip(h.bounds, h.counts) if n]
                    if h.counts[-1]:
                        cells.append(f">{h.bounds[-1]:g}:{h.counts[-1]}")
                    lines.append(f"    {' '.join(cells)}")
        return "\n".join(lines)


class ScopedMetrics:
    """A named-prefix view of a :class:`MetricsRegistry`.

    Hosts hold one of these as ``host.metrics`` so stack code can write
    ``m.inc("tcp.segs_in")`` and land on ``client.tcp.segs_in``.
    """

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self.registry = registry
        self.prefix = prefix.rstrip(".") + "." if prefix else ""

    def inc(self, name: str, n: int = 1) -> None:
        self.registry.inc(self.prefix + name, n)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.set_gauge(self.prefix + name, value)

    def set_max(self, name: str, value: float) -> None:
        self.registry.set_max(self.prefix + name, value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(self.prefix + name, value)

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self.prefix + name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self.prefix + name)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS_US
                  ) -> Histogram:
        return self.registry.histogram(self.prefix + name, bounds)
