"""Causal packet lineage: per-write trace records threaded through the stack.

Every application ``write`` is stamped with a :class:`WriteLineage`; the
tag rides on the mbufs of the socket-buffer chain, survives ``m_copy``
(cluster sharing and plain copies alike), and is collected into a
:class:`SegmentLineage` when TCP emits a segment.  The segment record is
keyed by its IP ``(src, ident)`` pair so the *receiving* host — which
shares the same recorder through the :class:`~repro.obs.observer.Observer`
— can re-attach it in the adapter receive interrupt and keep appending
events (IPQ wait, IP input, TCP input, socket wakeup, user copy) until
:class:`DeliveryLineage` closes the chain at the ``read`` system call.

Every event lands in **one global insertion-ordered log** as well as on
its record.  Aggregating that log per ``(host, span-name)`` in insertion
order reproduces the exact float-summation order of the per-host
:class:`~repro.sim.trace.SpanTracer`, which is what makes
:func:`repro.core.breakdown.breakdown_from_lineage` byte-for-byte equal
to the span-derived Table 2/3 figures.

The stack never imports this module: hosts carry ``host.lineage = None``
by default and every call site is duck-typed behind a single ``is not
None`` test, preserving the zero-overhead unobserved contract.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "LineageEvent",
    "WriteLineage",
    "SegmentLineage",
    "DeliveryLineage",
    "LineageRecorder",
    "allocation_count",
]


class LineageEvent:
    """One span occurrence on a causal chain.

    ``duration_us`` is the duration *as the recording site computed it*
    (tick-quantized for CPU charges, raw ``ns / 1000`` for the queue-wait
    style spans) so lineage aggregation reproduces the tracer's floats
    exactly.
    """

    __slots__ = ("name", "host", "start_ns", "end_ns", "duration_us")

    allocated = 0

    def __init__(self, name: str, host: str, start_ns: int, end_ns: int,
                 duration_us: float) -> None:
        self.name = name
        self.host = host
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.duration_us = duration_us
        LineageEvent.allocated += 1

    def __repr__(self) -> str:
        return (f"<{self.name}@{self.host} "
                f"[{self.start_ns}..{self.end_ns}ns] "
                f"{self.duration_us:.3f}us>")


class _Record:
    """Common behaviour: events append to the record AND the global log."""

    __slots__ = ("recorder", "events")

    def __init__(self, recorder: "LineageRecorder") -> None:
        self.recorder = recorder
        self.events: List[LineageEvent] = []

    def add(self, name: str, host: str, start_ns: int, end_ns: int,
            duration_us: float) -> LineageEvent:
        ev = LineageEvent(name, host, start_ns, end_ns, duration_us)
        self.events.append(ev)
        self.recorder.events.append(ev)
        return ev


class WriteLineage(_Record):
    """One application ``write()``: the root of every causal chain."""

    __slots__ = ("write_id", "host", "size", "seq_lo")

    allocated = 0

    def __init__(self, recorder: "LineageRecorder", write_id: int,
                 host: str, size: int, seq_lo: int) -> None:
        super().__init__(recorder)
        self.write_id = write_id
        self.host = host
        self.size = size
        self.seq_lo = seq_lo
        WriteLineage.allocated += 1

    def __repr__(self) -> str:
        return (f"<write #{self.write_id} {self.size}B "
                f"seq={self.seq_lo} on {self.host}>")


class SegmentLineage(_Record):
    """One emitted TCP segment (data, ACK, or control)."""

    __slots__ = ("segment_id", "kind", "tx_host", "rx_host", "seq",
                 "length", "retransmit", "write_ids", "key", "outcome",
                 "chaos")

    allocated = 0

    def __init__(self, recorder: "LineageRecorder", segment_id: int,
                 tx_host: str, seq: int, length: int,
                 kind: str = "data") -> None:
        super().__init__(recorder)
        self.segment_id = segment_id
        self.kind = kind
        self.tx_host = tx_host
        self.rx_host: Optional[str] = None
        self.seq = seq
        self.length = length
        self.retransmit = False
        self.write_ids: List[int] = []
        self.key: Optional[Tuple[int, int]] = None
        self.outcome: Optional[str] = None
        self.chaos: List[str] = []
        SegmentLineage.allocated += 1

    def adopt_writes(self, mbufs) -> None:
        """Collect the distinct write ids tagged on *mbufs*, in order."""
        for m in mbufs:
            w = m.lineage
            if w is not None and hasattr(w, "write_id") \
                    and w.write_id not in self.write_ids:
                self.write_ids.append(w.write_id)

    def __repr__(self) -> str:
        return (f"<seg #{self.segment_id} {self.kind} seq={self.seq} "
                f"len={self.length} {self.tx_host}->"
                f"{self.rx_host or '?'} {self.outcome or 'in-flight'}>")


class DeliveryLineage(_Record):
    """One ``read()`` returning data to the application."""

    __slots__ = ("delivery_id", "host", "size", "segment_ids")

    allocated = 0

    def __init__(self, recorder: "LineageRecorder", delivery_id: int,
                 host: str, size: int) -> None:
        super().__init__(recorder)
        self.delivery_id = delivery_id
        self.host = host
        self.size = size
        self.segment_ids: List[int] = []
        DeliveryLineage.allocated += 1

    def adopt_segments(self, mbufs) -> None:
        """Collect the segments whose bytes this read returns; a segment
        reaching an application ``read`` is, by definition, delivered."""
        for m in mbufs:
            s = m.lineage
            if s is not None and hasattr(s, "segment_id"):
                if s.segment_id not in self.segment_ids:
                    self.segment_ids.append(s.segment_id)
                if s.outcome is None:
                    s.outcome = "delivered"

    def __repr__(self) -> str:
        return (f"<delivery #{self.delivery_id} {self.size}B on "
                f"{self.host} from segs {self.segment_ids}>")


def allocation_count() -> int:
    """Total lineage objects ever allocated (zero-overhead audit hook)."""
    return (LineageEvent.allocated + WriteLineage.allocated
            + SegmentLineage.allocated + DeliveryLineage.allocated)


class LineageRecorder:
    """The shared, cross-host causal event store.

    One recorder is installed on *every* host of a testbed (via
    ``Observer(lineage=True)``) so a segment record created on the sender
    is found again — keyed by ``(ip.src, ip.ident)`` — in the receiver's
    adapter interrupt.
    """

    def __init__(self) -> None:
        self.events: List[LineageEvent] = []
        self.writes: List[WriteLineage] = []
        self.segments: List[SegmentLineage] = []
        self.deliveries: List[DeliveryLineage] = []
        self._by_key: Dict[Tuple[int, int], SegmentLineage] = {}
        self._ids = itertools.count(1)
        # Warmup boundary: indices into the four lists above, set by
        # mark().  Index-based (not time-based) so the boundary matches
        # the tracer's snapshot/reset semantics exactly.
        self._mark = (0, 0, 0, 0)

    # ------------------------------------------------------------------
    # Record creation (duck-typed from the stack)
    # ------------------------------------------------------------------
    def begin_write(self, host: str, size: int, seq_lo: int) -> WriteLineage:
        rec = WriteLineage(self, next(self._ids), host, size, seq_lo)
        self.writes.append(rec)
        return rec

    def begin_segment(self, tx_host: str, seq: int, length: int,
                      kind: str = "data") -> SegmentLineage:
        rec = SegmentLineage(self, next(self._ids), tx_host, seq, length,
                             kind)
        self.segments.append(rec)
        return rec

    def begin_delivery(self, host: str, size: int) -> DeliveryLineage:
        rec = DeliveryLineage(self, next(self._ids), host, size)
        self.deliveries.append(rec)
        return rec

    def free_event(self, name: str, host: str, start_ns: int, end_ns: int,
                   duration_us: float) -> LineageEvent:
        """A host-level event not tied to one record (e.g. rx.wakeup)."""
        ev = LineageEvent(name, host, start_ns, end_ns, duration_us)
        self.events.append(ev)
        return ev

    # ------------------------------------------------------------------
    # Cross-wire correlation
    # ------------------------------------------------------------------
    def set_key(self, rec: SegmentLineage, src_ip: int, ident: int) -> None:
        rec.key = (src_ip, ident)
        self._by_key[rec.key] = rec

    def match(self, src_ip: int, ident: int) -> Optional[SegmentLineage]:
        return self._by_key.get((src_ip, ident))

    def match_pdu(self, pdu: bytes) -> Optional[SegmentLineage]:
        """Find the segment record for a raw IP datagram / PDU."""
        from repro.net.headers import HeaderError
        from repro.net.packet import Packet

        try:
            hdr = Packet(pdu).ip_header
        except HeaderError:
            return None
        return self.match(hdr.src, hdr.identification)

    # ------------------------------------------------------------------
    # Outcomes and chaos annotation (duck-typed from chaos/adapters)
    # ------------------------------------------------------------------
    def mark_dropped(self, rec: Optional[SegmentLineage],
                     why: str) -> None:
        if rec is not None and rec.outcome is None:
            rec.outcome = f"dropped:{why}"

    def mark_dropped_pdu(self, pdu: bytes, why: str) -> None:
        self.mark_dropped(self.match_pdu(pdu), why)

    def annotate_pdu(self, pdu: bytes, note: str) -> None:
        rec = self.match_pdu(pdu)
        if rec is not None:
            rec.chaos.append(note)

    # ------------------------------------------------------------------
    # Warmup boundary + views
    # ------------------------------------------------------------------
    def mark(self) -> None:
        """Start measured collection here (mirrors tracer.reset())."""
        self._mark = (len(self.events), len(self.writes),
                      len(self.segments), len(self.deliveries))

    def measured_events(self) -> List[LineageEvent]:
        return self.events[self._mark[0]:]

    def measured_writes(self) -> List[WriteLineage]:
        return self.writes[self._mark[1]:]

    def measured_segments(self) -> List[SegmentLineage]:
        return self.segments[self._mark[2]:]

    def measured_deliveries(self) -> List[DeliveryLineage]:
        return self.deliveries[self._mark[3]:]

    def segment_by_id(self, segment_id: int) -> Optional[SegmentLineage]:
        for s in self.segments:
            if s.segment_id == segment_id:
                return s
        return None

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregate(self, host: Optional[str] = None) -> Dict[str, float]:
        """Sum measured event durations per span name, in insertion order.

        Filtering by *host* and accumulating in global insertion order
        reproduces the per-host tracer's float-summation order exactly;
        the totals are byte-for-byte identical to
        ``tracer.snapshot()[name].total_us``.
        """
        totals: Dict[str, float] = {}
        for ev in self.measured_events():
            if host is not None and ev.host != host:
                continue
            totals[ev.name] = totals.get(ev.name, 0.0) + ev.duration_us
        return totals

    def events_between(self, start_ns: int, end_ns: int,
                       hosts: Optional[set] = None
                       ) -> Iterator[LineageEvent]:
        """Measured events overlapping the window (waterfall source)."""
        for ev in self.measured_events():
            if ev.end_ns < start_ns or ev.start_ns > end_ns:
                continue
            if hosts is not None and ev.host not in hosts:
                continue
            yield ev
