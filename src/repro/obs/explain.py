"""``repro explain``: decompose one round trip into its causal waterfall.

The paper's Tables 2/3 answer "where does the time go *on average*";
this module answers it for **one specific RTT**.  A traced run
(:func:`run_traced`) records causal lineage and flow telemetry; then
:func:`explain_rtt` picks the *k*-th measured round trip, walks every
lineage event inside its window, and attributes each nanosecond of the
window to exactly one layer with an innermost-active interval sweep —
so the per-layer rows **sum exactly to the measured RTT** (the clock
card quantizes the published number to its 40 ns tick, hence "within a
clock quantum").

Concurrency is preserved, not averaged away: the ATM driver-copy/wire
overlap (the adapter clocks cells onto the fiber while the driver is
still copying later cells) shows up both in the waterfall bars and in
an explicit overlap figure.

:func:`diff_runs` compares the per-transfer attribution profiles of two
runs (say, a clean baseline against an impaired link) and names the
layer that ate the difference.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

__all__ = ["TracedRun", "RTTExplanation", "AttributionRow", "run_traced",
           "explain_rtt", "write_rtt_trace", "diff_runs",
           "format_diff", "attribution_profile"]

#: Wire pseudo-host name used by the adapters' lineage wire events.
WIRE_HOST = "wire"


class TracedRun:
    """One lineage+flow observed benchmark run, ready to explain."""

    def __init__(self, observer, result, network: str, label: str,
                 iterations: int) -> None:
        self.observer = observer
        self.result = result
        self.network = network
        self.label = label
        self.iterations = iterations
        self.recorder = observer.lineage
        self.flow = observer.flow

    @property
    def size(self) -> int:
        return self.result.size


def run_traced(size: int = 1400, network: str = "atm", config=None,
               iterations: int = 4, warmup: int = 1,
               impairments=None, label: str = "run") -> TracedRun:
    """Run the echo benchmark with lineage + flow tracing enabled."""
    from repro.core.experiment import run_round_trip
    from repro.obs.observer import Observer

    observer = Observer(lineage=True, flow=True)
    result = run_round_trip(size=size, network=network, config=config,
                            iterations=iterations, warmup=warmup,
                            observer=observer, impairments=impairments)
    return TracedRun(observer, result, network, label, iterations)


class AttributionRow:
    """One layer's share of a single RTT window."""

    __slots__ = ("name", "host", "ns")

    def __init__(self, name: str, host: str, ns: int) -> None:
        self.name = name
        self.host = host
        self.ns = ns

    @property
    def us(self) -> float:
        return self.ns / 1000.0


class RTTExplanation:
    """The full decomposition of one measured round trip."""

    def __init__(self, run: TracedRun, index: int, start_ns: int,
                 end_ns: int, events: List, rows: List[AttributionRow],
                 overlap_ns: int) -> None:
        self.run = run
        self.index = index
        self.start_ns = start_ns
        self.end_ns = end_ns
        #: Lineage events overlapping the window, by start time.
        self.events = events
        #: Innermost-active attribution; ``sum(r.ns) == window_ns``.
        self.rows = rows
        #: ns during which the wire was clocking cells while a host CPU
        #: was still charged to a driver span (the §2.2.3 overlap).
        self.overlap_ns = overlap_ns

    @property
    def window_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def window_us(self) -> float:
        return self.window_ns / 1000.0

    @property
    def measured_rtt_us(self) -> float:
        return self.run.result.rtt_us[self.index]

    def format(self, width: int = 48) -> str:
        """The text waterfall plus the attribution table."""
        lines: List[str] = []
        r = self.run
        lines.append(
            f"RTT #{self.index} of {r.label}: {r.size} bytes over "
            f"{r.network}, measured {self.measured_rtt_us:.2f}us "
            f"(window {self.window_us:.3f}us, clock quantum 0.04us)")
        lines.append("")
        span = max(self.window_ns, 1)
        lines.append(f"{'layer event':<22} {'host':<7} {'start_us':>9} "
                     f"{'dur_us':>8}  timeline")
        for ev in self.events:
            s = max(ev.start_ns, self.start_ns)
            e = min(ev.end_ns, self.end_ns)
            lo = int((s - self.start_ns) * width / span)
            hi = max(int((e - self.start_ns) * width / span), lo + 1)
            bar = " " * lo + "#" * (hi - lo)
            lines.append(
                f"{ev.name:<22} {ev.host:<7} "
                f"{(ev.start_ns - self.start_ns) / 1000.0:>9.3f} "
                f"{ev.duration_us:>8.3f}  |{bar:<{width}}|")
        lines.append("")
        lines.append(f"{'attributed to':<22} {'host':<7} {'us':>9} "
                     f"{'share':>7}")
        for row in self.rows:
            lines.append(f"{row.name:<22} {row.host:<7} "
                         f"{row.us:>9.3f} "
                         f"{100.0 * row.ns / span:>6.1f}%")
        total_us = sum(r_.ns for r_ in self.rows) / 1000.0
        lines.append(f"{'total':<22} {'':<7} {total_us:>9.3f} "
                     f"{'100.0%':>7}")
        if self.overlap_ns:
            lines.append("")
            lines.append(
                f"driver-copy/wire overlap: {self.overlap_ns / 1000.0:.3f}"
                f"us of wire time hidden under the driver copy")
        return "\n".join(lines)


def _client_windows(recorder, client: str) -> List[Tuple[int, int]]:
    """[(start_ns, end_ns)] per measured iteration on the client.

    An iteration is one ``tx.user``..``rx.user`` burst: it opens at the
    first ``tx.user`` after the previous iteration's last ``rx.user``
    and closes at the last ``rx.user`` before the next ``tx.user`` —
    exactly the interval the benchmark brackets with clock reads.
    """
    windows: List[Tuple[int, int]] = []
    start: Optional[int] = None
    end: Optional[int] = None
    for ev in recorder.measured_events():
        if ev.host != client:
            continue
        if ev.name == "tx.user":
            if start is not None and end is not None:
                windows.append((start, end))
                start = end = None
            if start is None:
                start = ev.start_ns
        elif ev.name == "rx.user":
            end = ev.end_ns
    if start is not None and end is not None:
        windows.append((start, end))
    return windows


def _attribute(events, start_ns: int, end_ns: int) -> List[AttributionRow]:
    """Innermost-active interval sweep: every ns goes to one row.

    At each elementary interval the winner is the active event with the
    latest start (ties: earliest end, then latest arrival in the log —
    the most specific, most recently entered layer).  Intervals with no
    active event become explicit ``(idle/turnaround)`` rows rather than
    vanishing, so the rows always sum exactly to the window.
    """
    bounds = {start_ns, end_ns}
    clipped = []
    for order, ev in enumerate(events):
        s = max(ev.start_ns, start_ns)
        e = min(ev.end_ns, end_ns)
        if s >= e:
            continue  # zero-width inside the window
        clipped.append((s, e, order, ev))
        bounds.add(s)
        bounds.add(e)
    cuts = sorted(bounds)
    totals: Dict[Tuple[str, str], int] = {}
    order_seen: List[Tuple[str, str]] = []
    for lo, hi in zip(cuts, cuts[1:]):
        winner = None
        winner_rank = None
        for s, e, order, ev in clipped:
            if s <= lo and e >= hi:
                rank = (s, -e, order)
                if winner_rank is None or rank > winner_rank:
                    winner, winner_rank = ev, rank
        key = ((winner.name, winner.host) if winner is not None
               else ("(idle/turnaround)", ""))
        if key not in totals:
            totals[key] = 0
            order_seen.append(key)
        totals[key] += hi - lo
    return [AttributionRow(name, host, totals[(name, host)])
            for name, host in order_seen]


def _wire_overlap_ns(events) -> int:
    """ns of wire activity concurrent with a driver-copy CPU charge."""
    wires = [e for e in events if e.host == WIRE_HOST]
    copies = [e for e in events
              if e.host != WIRE_HOST
              and (".atm" in e.name or ".ether" in e.name)]
    total = 0
    for w in wires:
        for c in copies:
            lo = max(w.start_ns, c.start_ns)
            hi = min(w.end_ns, c.end_ns)
            if hi > lo:
                total += hi - lo
    return total


def explain_rtt(run: TracedRun, index: int = 0,
                client: str = "client",
                server: str = "server") -> RTTExplanation:
    """Decompose the *index*-th measured round trip of a traced run."""
    recorder = run.recorder
    if recorder is None:
        raise ValueError("run was not traced with lineage enabled")
    windows = _client_windows(recorder, client)
    if not windows:
        raise ValueError("no measured round trips in the lineage log")
    if not 0 <= index < len(windows):
        raise ValueError(f"rtt index {index} out of range "
                         f"(have {len(windows)})")
    start_ns, end_ns = windows[index]
    events = sorted(
        (ev for ev in recorder.events_between(
            start_ns, end_ns, hosts={client, server, WIRE_HOST})
         if max(ev.start_ns, start_ns) < min(ev.end_ns, end_ns)),
        key=lambda e: (e.start_ns, e.end_ns))
    rows = _attribute(events, start_ns, end_ns)
    return RTTExplanation(run, index, start_ns, end_ns, events, rows,
                          _wire_overlap_ns(events))


def write_rtt_trace(explanation: RTTExplanation, path: str) -> int:
    """Export one RTT's waterfall as a Chrome ``trace_event`` file.

    Each participant (client, server, the wire) is a Perfetto process;
    each layer is a named thread, reusing the observer's layer lanes.
    """
    from repro.obs.observer import TID_NAMES, span_tid

    pids: Dict[str, int] = {}
    events: List[dict] = []
    for ev in explanation.events:
        pid = pids.get(ev.host)
        if pid is None:
            pid = pids[ev.host] = len(pids) + 1
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "ts": 0.0,
                           "args": {"name": ev.host}})
            for tid, tname in TID_NAMES.items():
                events.append({"name": "thread_name", "ph": "M",
                               "pid": pid, "tid": tid, "ts": 0.0,
                               "args": {"name": tname}})
        events.append({
            "name": ev.name, "cat": "lineage", "ph": "X",
            "ts": (ev.start_ns - explanation.start_ns) / 1000.0,
            "dur": ev.duration_us,
            "pid": pid, "tid": span_tid(ev.name),
        })
    doc = {"traceEvents": events, "displayTimeUnit": "ms",
           "otherData": {"generator": "repro.obs.explain",
                         "rtt_index": explanation.index,
                         "measured_rtt_us": explanation.measured_rtt_us}}
    with open(path, "w") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return len(events)


# ----------------------------------------------------------------------
# Profile diffing
# ----------------------------------------------------------------------
def attribution_profile(run: TracedRun) -> Dict[str, float]:
    """Mean per-transfer µs per ``host.span`` over the measured run."""
    recorder = run.recorder
    profile: Dict[str, float] = {}
    for host in ("client", "server", WIRE_HOST):
        for name, total in recorder.aggregate(host=host).items():
            profile[f"{host}.{name}"] = total / run.iterations
    return profile


def diff_runs(run_a: TracedRun, run_b: TracedRun) -> List[dict]:
    """Per-layer deltas between two traced runs, largest first."""
    pa = attribution_profile(run_a)
    pb = attribution_profile(run_b)
    rows = []
    for key in sorted(set(pa) | set(pb)):
        a = pa.get(key, 0.0)
        b = pb.get(key, 0.0)
        rows.append({"layer": key, "a_us": a, "b_us": b,
                     "delta_us": b - a})
    rows.sort(key=lambda r: (-abs(r["delta_us"]), r["layer"]))
    return rows


def format_diff(run_a: TracedRun, run_b: TracedRun,
                limit: int = 12) -> str:
    """Human-readable diff naming the layer that ate the difference."""
    rows = diff_runs(run_a, run_b)
    rtt_a = run_a.result.mean_rtt_us
    rtt_b = run_b.result.mean_rtt_us
    lines = [
        f"attribution diff: {run_a.label} (mean {rtt_a:.1f}us) vs "
        f"{run_b.label} (mean {rtt_b:.1f}us), "
        f"delta {rtt_b - rtt_a:+.1f}us per RTT",
        f"{'layer':<28} {run_a.label[:10]:>10} {run_b.label[:10]:>10} "
        f"{'delta_us':>10}",
    ]
    for row in rows[:limit]:
        lines.append(f"{row['layer']:<28} {row['a_us']:>10.2f} "
                     f"{row['b_us']:>10.2f} {row['delta_us']:>+10.2f}")
    if rows and abs(rows[0]["delta_us"]) > 0.005:
        top = rows[0]
        direction = "gained" if top["delta_us"] > 0 else "saved"
        lines.append(
            f"=> {top['layer']} {direction} the most: "
            f"{abs(top['delta_us']):.2f}us per transfer")
    else:
        lines.append("=> no layer moved more than 0.005us per transfer")
    return "\n".join(lines)
