"""The LANCE Ethernet interface: the paper's Table 1 baseline.

Modelled after the DECstation 5000/200's on-board LANCE: a 10 Mb/s
half-duplex link, MTU 1500, with the driver copying each frame between
mbufs and the adapter's buffer memory and taking an interrupt per
received frame.  The fixed per-frame driver/adapter costs are what give
Ethernet its much higher small-packet latency in Table 1; the 10 Mb/s
line rate dominates at large sizes.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.checksum.crc import crc32
from repro.net.packet import Packet
from repro.sim.cpu import Priority
from repro.sim.engine import us
from repro.sim.resources import Semaphore

__all__ = ["EthernetLink", "LanceEthernet", "EthernetStats"]

#: Header (14) + FCS (4) bytes added to each frame.
FRAME_OVERHEAD = 18
#: Preamble (8) + inter-frame gap (12) in byte times.
WIRE_OVERHEAD = 20
#: Minimum frame (without preamble/IFG).
MIN_FRAME = 64


class EthernetStats:
    __slots__ = ("frames_sent", "frames_received", "bytes_sent",
                 "bytes_received", "fcs_errors", "rx_overruns")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)


class EthernetLink:
    """A private 10 Mb/s Ethernet segment between two hosts."""

    def __init__(self, sim, bandwidth_bps: int = 10_000_000,
                 prop_delay_ns: int = 1000):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay_ns = prop_delay_ns
        self.byte_time_ns = int(round(8 * 1e9 / bandwidth_bps))
        self.fault_injector = None
        #: Chaos impairment layer (repro.chaos), duck-typed; None keeps
        #: the wire path byte-identical to the seed.
        self.impairments = None
        self._ends: List["LanceEthernet"] = []
        #: Shared medium: one frame at a time.
        self._medium_free_at = 0

    def attach(self, adapter: "LanceEthernet") -> None:
        if len(self._ends) >= 2:
            raise RuntimeError("Ethernet link already has two ends")
        self._ends.append(adapter)
        adapter.link = self

    def peer_of(self, adapter: "LanceEthernet") -> "LanceEthernet":
        if len(self._ends) != 2:
            raise RuntimeError("Ethernet link is not fully connected")
        return self._ends[1] if self._ends[0] is adapter else self._ends[0]

    def frame_wire_time_ns(self, payload_len: int) -> int:
        """Time to clock one frame (with padding/preamble/IFG) out."""
        frame = max(payload_len + FRAME_OVERHEAD, MIN_FRAME)
        return (frame + WIRE_OVERHEAD) * self.byte_time_ns

    def reserve_medium(self, earliest_ns: int, wire_time_ns: int) -> int:
        """Claim the shared medium; returns the transmit start time."""
        start = max(earliest_ns, self._medium_free_at)
        self._medium_free_at = start + wire_time_ns
        return start


class LanceEthernet:
    """One LANCE interface attached to a host."""

    mtu = 1500

    #: Receive descriptor ring depth (the LANCE's RX ring).  Frames
    #: arriving while every descriptor holds an undrained frame are
    #: dropped with an overrun (MISS/ERR_FRAM).
    RX_RING_FRAMES = 32

    def __init__(self, host):
        self.host = host
        self.link: Optional[EthernetLink] = None
        self.stats = EthernetStats()
        #: Effective ring depth; clamped by the chaos layer to force
        #: overruns.  At the default the ring never fills on a
        #: two-host segment (the 10 Mb/s wire is far slower than the
        #: driver's drain).
        self.rx_ring_limit = self.RX_RING_FRAMES
        self._rx_ring_frames = 0
        self._tx_lock = Semaphore(host.sim, value=1, name="ether-tx")
        #: The LANCE has a single transmit buffer: the driver cannot
        #: copy the next frame until the transmit-done interrupt for the
        #: previous one.  This serialization (copy, transmit, interrupt,
        #: copy, ...) is what keeps multi-frame transfers from
        #: pipelining, and is a large part of Ethernet's Table 1
        #: disadvantage at 4000/8000 bytes.
        self._tx_done_at = 0
        host.attach_interface(self)

    @property
    def suggested_mss(self) -> int:
        return self.host.config.mss_ethernet

    # ------------------------------------------------------------------
    # Transmit
    # ------------------------------------------------------------------
    def output(self, packet: Packet, priority: int = Priority.KERNEL,
               data_bearing: bool = True) -> Generator:
        if self.link is None:
            raise RuntimeError("Ethernet interface not attached to a link")
        yield self._tx_lock.acquire()
        try:
            yield from self._transmit(packet, priority, data_bearing)
        finally:
            self._tx_lock.release()

    def _transmit(self, packet: Packet, priority: int,
                  data_bearing: bool) -> Generator:
        host = self.host
        costs = host.costs
        link = self.link
        length = len(packet.data)
        span = "tx.ether" if data_bearing else "tx.ack.ether"

        # Wait for the transmit-done interrupt of the previous frame
        # (single transmit buffer); the CPU is free meanwhile.
        if self._tx_done_at > host.sim.now:
            yield host.sim.timeout(self._tx_done_at - host.sim.now)

        cost = us(costs.ether_tx_fixed_us
                  + costs.ether_tx_per_byte_us * length)
        yield from host.charge(cost, priority, "ether tx", span=span,
                               lineage=packet.lineage)

        wire_time = link.frame_wire_time_ns(length)
        start = link.reserve_medium(host.sim.now, wire_time)
        arrival = start + wire_time + link.prop_delay_ns
        self._tx_done_at = start + wire_time
        if packet.lineage is not None:
            packet.lineage.add(
                "wire.ether" if data_bearing else "wire.ack.ether",
                "wire", start, arrival, (arrival - start) / 1000.0)

        self.stats.frames_sent += 1
        self.stats.bytes_sent += length
        if host.metrics is not None:
            host.metrics.inc("ether.frames_sent")
            host.metrics.inc("ether.bytes_sent", length)

        wire_bytes = packet.data
        wire_fault = None
        if link.fault_injector is not None:
            wire_bytes, wire_fault = link.fault_injector.apply_link(
                wire_bytes, frame_check=crc32)
        peer = link.peer_of(self)
        delay_ns = max(0, arrival - host.sim.now)
        impairments = link.impairments
        if impairments is None:
            host.sim.schedule(delay_ns, peer.deliver,
                              wire_bytes, wire_fault, data_bearing)
        else:
            impairments.transmit_ether(self, peer, delay_ns, wire_bytes,
                                       wire_fault, data_bearing)

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------
    def deliver(self, frame_payload: bytes, wire_fault,
                data_bearing: bool) -> None:
        if self._rx_ring_frames >= self.rx_ring_limit:
            # RX ring overrun: no free descriptor, the LANCE drops the
            # frame.  TCP's retransmission timer recovers.
            self.stats.rx_overruns += 1
            if self.host.metrics is not None:
                self.host.metrics.inc("ether.rx_overruns")
            if self.host.lineage is not None:
                self.host.lineage.mark_dropped_pdu(frame_payload,
                                                   "rx-ring-overrun")
            return
        self._rx_ring_frames += 1
        self.host.sim.process(
            self._rx_interrupt(frame_payload, wire_fault, data_bearing),
            name=f"{self.host.name}:ether-rx",
        )

    def _rx_interrupt(self, frame_payload: bytes, wire_fault,
                      data_bearing: bool) -> Generator:
        host = self.host
        costs = host.costs
        arrived_at = host.sim.now
        if host.metrics is not None:
            host.metrics.inc("ether.interrupts")
        yield host.cpu.run(us(costs.intr_overhead_us),
                           Priority.HARD_INTR, "ether intr")
        cost = us(costs.ether_rx_fixed_us
                  + costs.ether_rx_per_byte_us * len(frame_payload))
        yield host.cpu.run(cost, Priority.HARD_INTR, "ether rx copy")
        # Frame copied out of the adapter: the ring descriptor is free.
        self._rx_ring_frames -= 1
        span = "rx.ether" if data_bearing else "rx.ack.ether"
        wait_us = (host.sim.now - arrived_at) / 1000.0
        host.tracer.record_value(span, wait_us)
        lin = host.lineage
        seg_rec = None
        if lin is not None:
            seg_rec = lin.match_pdu(frame_payload)
            if seg_rec is not None:
                seg_rec.rx_host = host.name
                seg_rec.add(span, host.name, arrived_at, host.sim.now,
                            wait_us)
        self.stats.frames_received += 1
        self.stats.bytes_received += len(frame_payload)
        if host.metrics is not None:
            host.metrics.inc("ether.frames_received")
            host.metrics.inc("ether.bytes_received", len(frame_payload))
        if wire_fault is not None and wire_fault.detected_by_link_check:
            # The Ethernet CRC caught it: frame dropped by the adapter.
            self.stats.fcs_errors += 1
            if host.metrics is not None:
                host.metrics.inc("ether.fcs_errors")
            if lin is not None:
                lin.mark_dropped(seg_rec, "fcs")
            return
        # ENOBUFS on the mbuf copy: the driver drops the frame (IF_DROP).
        if not host.pool.admit(len(frame_payload)):
            if lin is not None:
                lin.mark_dropped(seg_rec, "enobufs")
            return
        packet = Packet(frame_payload)
        packet.lineage = seg_rec
        packet.last_cell_arrival_ns = arrived_at
        if wire_fault is not None:
            packet.corrupted_by = wire_fault.source
        host.softnet.schednetisr(packet)
