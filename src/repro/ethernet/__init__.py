"""LANCE Ethernet interface and link (Table 1 baseline)."""

from repro.ethernet.adapter import EthernetLink, EthernetStats, LanceEthernet

__all__ = ["EthernetLink", "EthernetStats", "LanceEthernet"]
