/* Compiled hot core for the repro simulator.
 *
 * Four measured hot spots, each a byte-identical drop-in for its pure
 * Python counterpart (goldens in tests/perf_golden/ gate equivalence):
 *
 *   1. the event-loop heap scheduling core (repro.sim.engine)
 *   2. the RFC 1071 Internet checksum (repro.checksum.internet)
 *   3. CRC-10/CRC-32 + AAL3/4 segmentation (repro.checksum.crc,
 *      repro.atm.aal)
 *   4. mbuf chain copy/slice/span paths (repro.mem.mbuf)
 *
 * The module is import-selected once by repro.perf.native (honouring
 * REPRO_NATIVE=0|1); nothing else may import repro._native directly —
 * `repro lint` enforces the layering rule.
 *
 * Exception classes and sentinels are *installed* from Python at import
 * time (engine_install / mbuf_install / aal_install) so every error
 * raised here is the exact class — and carries the exact message — the
 * pure implementation raises.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <string.h>

/* Py_SETREF is only public API from 3.12; provide our own. */
#define REPRO_SETREF(dst, src)                  \
    do {                                        \
        PyObject *_tmp = (PyObject *)(dst);     \
        (dst) = (src);                          \
        Py_XDECREF(_tmp);                       \
    } while (0)

/* Engine tuning constants; must match repro.sim.engine. */
#define POOL_MAX 1024
#define COMPACT_MASK 0xFFF
#define COMPACT_MIN 64

/* ---------------------------------------------------------------- */
/* Installed Python objects (engine_install / mbuf_install /        */
/* aal_install fill these in at import time).                       */
/* ---------------------------------------------------------------- */

static PyObject *g_pending;           /* Event._PENDING sentinel */
static PyObject *g_scheduling_error;  /* repro.sim.errors.SchedulingError */
static PyObject *g_deadlock;          /* repro.sim.errors.Deadlock */
static PyObject *g_noop;              /* repro.sim.engine._noop */
static PyObject *g_mbuf_error;        /* repro.mem.mbuf.MbufError */
static PyObject *g_reassembly_error;  /* repro.atm.aal.ReassemblyError */
static PyObject *g_cell_cls;          /* repro.atm.aal.Cell */

static PyObject *g_empty_tuple;
static PyObject *g_zero;

/* Interned attribute/method names. */
static PyObject *s_on_schedule, *s_on_dispatch, *s_value, *s_exc,
    *s_freed, *s_cluster, *s_underdata, *s_data, *s_payload, *s_crc,
    *s_index, *s_last, *s_cancelled;

static int
ensure_engine_installed(void)
{
    if (g_pending == NULL || g_scheduling_error == NULL ||
        g_deadlock == NULL || g_noop == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "engine_install() has not been called");
        return -1;
    }
    return 0;
}

/* ---------------------------------------------------------------- */
/* ScheduledCall twin                                                */
/* ---------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    long long time;       /* authoritative dispatch time, ns */
    long long heap_time;  /* time frozen at heap push (the pure loop's
                           * tuple slot 0); reschedule() may move `time`
                           * past it, and the dispatch loops re-key the
                           * entry when the two diverge */
    long long seq;        /* insertion sequence number */
    long long key_ll;     /* tie-break key when it fits in 64 bits */
    int key_fits;         /* key_ll is valid */
    char cancelled;
    PyObject *key;        /* the Python tie-break key object */
    PyObject *fn;
    PyObject *args;
} CallObject;

static PyTypeObject CallType;

static void
Call_dealloc(CallObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->key);
    Py_XDECREF(self->fn);
    Py_XDECREF(self->args);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Call_traverse(CallObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->key);
    Py_VISIT(self->fn);
    Py_VISIT(self->args);
    return 0;
}

static int
Call_clear(CallObject *self)
{
    Py_CLEAR(self->key);
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    return 0;
}

static PyObject *
Call_cancel(CallObject *self, PyObject *Py_UNUSED(ignored))
{
    if (ensure_engine_installed() < 0)
        return NULL;
    self->cancelled = 1;
    /* Drop references eagerly so cancelled chains do not pin memory
     * (mirrors ScheduledCall.cancel). */
    Py_INCREF(g_noop);
    REPRO_SETREF(self->fn, g_noop);
    Py_INCREF(g_empty_tuple);
    REPRO_SETREF(self->args, g_empty_tuple);
    Py_RETURN_NONE;
}

static PyObject *
Call_get_time(CallObject *self, void *closure)
{
    return PyLong_FromLongLong(self->time);
}

static PyObject *
Call_get_seq(CallObject *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
Call_get_key(CallObject *self, void *closure)
{
    Py_INCREF(self->key);
    return self->key;
}

static PyObject *
Call_richcompare(PyObject *v, PyObject *w, int op)
{
    if (op != Py_LT || Py_TYPE(v) != &CallType || Py_TYPE(w) != &CallType) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    CallObject *a = (CallObject *)v, *b = (CallObject *)w;
    if (a->time != b->time) {
        if (a->time < b->time)
            Py_RETURN_TRUE;
        Py_RETURN_FALSE;
    }
    if (a->key_fits && b->key_fits) {
        if (a->key_ll < b->key_ll)
            Py_RETURN_TRUE;
        Py_RETURN_FALSE;
    }
    return PyObject_RichCompare(a->key, b->key, Py_LT);
}

static PyMethodDef Call_methods[] = {
    {"cancel", (PyCFunction)Call_cancel, METH_NOARGS,
     "Prevent the callback from running.  Idempotent."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Call_getset[] = {
    {"time", (getter)Call_get_time, NULL, "dispatch time (ns)", NULL},
    {"seq", (getter)Call_get_seq, NULL, "insertion sequence number", NULL},
    {"key", (getter)Call_get_key, NULL, "same-timestamp sort key", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef Call_members[] = {
    {"fn", T_OBJECT_EX, offsetof(CallObject, fn), 0, "callback"},
    {"args", T_OBJECT_EX, offsetof(CallObject, args), 0, "callback args"},
    {"cancelled", T_BOOL, offsetof(CallObject, cancelled), 0,
     "lazily-cancelled flag"},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject CallType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._corec.ScheduledCall",
    .tp_basicsize = sizeof(CallObject),
    .tp_dealloc = (destructor)Call_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled handle for a callback in the event queue.",
    .tp_traverse = (traverseproc)Call_traverse,
    .tp_clear = (inquiry)Call_clear,
    .tp_richcompare = Call_richcompare,
    .tp_methods = Call_methods,
    .tp_getset = Call_getset,
    .tp_members = Call_members,
    .tp_free = PyObject_GC_Del,
};

/* ---------------------------------------------------------------- */
/* Heap primitives over a plain Python list of (time, key, call)     */
/* tuples.  The list object itself is the simulator's queue — tests  */
/* and the compaction path hold direct references to it, so every    */
/* operation mutates it in place exactly as heapq does.  Comparisons */
/* read the CallObject's C fields directly; (time, key) is a strict  */
/* total order (keys are unique), so pop order is identical to the   */
/* pure heapq's regardless of internal layout.                       */
/* ---------------------------------------------------------------- */

static int
entry_lt(PyObject *v, PyObject *w)
{
    if (PyTuple_CheckExact(v) && PyTuple_CheckExact(w) &&
        PyTuple_GET_SIZE(v) == 3 && PyTuple_GET_SIZE(w) == 3) {
        PyObject *cv = PyTuple_GET_ITEM(v, 2);
        PyObject *cw = PyTuple_GET_ITEM(w, 2);
        if (Py_TYPE(cv) == &CallType && Py_TYPE(cw) == &CallType) {
            CallObject *a = (CallObject *)cv, *b = (CallObject *)cw;
            /* Compare the time frozen at push (the pure heap compares
             * the tuple's slot 0): a reschedule()-deferred call keeps
             * its heap position until the loops re-key it. */
            if (a->heap_time != b->heap_time)
                return a->heap_time < b->heap_time;
            if (a->key_fits && b->key_fits)
                return a->key_ll < b->key_ll;
            return PyObject_RichCompareBool(a->key, b->key, Py_LT);
        }
    }
    return PyObject_RichCompareBool(v, w, Py_LT);
}

static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    Py_ssize_t parentpos, size;
    PyObject *newitem, *parent;
    int cmp;

    size = PyList_GET_SIZE(heap);
    while (pos > startpos) {
        parentpos = (pos - 1) >> 1;
        newitem = PyList_GET_ITEM(heap, pos);
        parent = PyList_GET_ITEM(heap, parentpos);
        Py_INCREF(newitem);
        Py_INCREF(parent);
        cmp = entry_lt(newitem, parent);
        Py_DECREF(parent);
        Py_DECREF(newitem);
        if (cmp < 0)
            return -1;
        if (size != PyList_GET_SIZE(heap)) {
            PyErr_SetString(PyExc_RuntimeError,
                            "list changed size during heap operation");
            return -1;
        }
        if (cmp == 0)
            break;
        parent = PyList_GET_ITEM(heap, parentpos);
        newitem = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, parentpos, newitem);
        PyList_SET_ITEM(heap, pos, parent);
        pos = parentpos;
    }
    return 0;
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t startpos = pos, endpos, childpos, limit;
    PyObject *tmp1, *tmp2;
    int cmp;

    endpos = PyList_GET_SIZE(heap);
    limit = endpos >> 1;
    while (pos < limit) {
        childpos = 2 * pos + 1;
        if (childpos + 1 < endpos) {
            PyObject *a = PyList_GET_ITEM(heap, childpos);
            PyObject *b = PyList_GET_ITEM(heap, childpos + 1);
            Py_INCREF(a);
            Py_INCREF(b);
            cmp = entry_lt(a, b);
            Py_DECREF(a);
            Py_DECREF(b);
            if (cmp < 0)
                return -1;
            childpos += ((unsigned)cmp ^ 1);
            if (endpos != PyList_GET_SIZE(heap)) {
                PyErr_SetString(PyExc_RuntimeError,
                                "list changed size during heap operation");
                return -1;
            }
        }
        tmp1 = PyList_GET_ITEM(heap, childpos);
        tmp2 = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, childpos, tmp2);
        PyList_SET_ITEM(heap, pos, tmp1);
        pos = childpos;
    }
    return heap_siftdown(heap, startpos, pos);
}

static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* Pop and return the smallest entry (new reference); heap must be
 * non-empty. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last, *returnitem;

    last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) == 0)
        return last;
    returnitem = PyList_GET_ITEM(heap, 0);
    PyList_SET_ITEM(heap, 0, last);
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

static int
heap_heapify(PyObject *heap)
{
    Py_ssize_t i;
    for (i = PyList_GET_SIZE(heap) / 2 - 1; i >= 0; i--) {
        if (heap_siftup(heap, i) < 0)
            return -1;
    }
    return 0;
}

/* ---------------------------------------------------------------- */
/* EngineCore: the simulator's clock, heap, pool and dispatch loops  */
/* ---------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    long long now;
    long long seq_next;
    long long events_executed;
    PyObject *queue;   /* list of (time, key, call) tuples */
    PyObject *pool;    /* free list of CallObject */
    PyObject *keyfn;   /* tie-break key function or None */
    PyObject *hooks;   /* SimHooks instance or None */
} CoreObject;

static PyTypeObject CoreType;

static int
Core_init(CoreObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *keyfn = Py_None;
    static char *kwlist[] = {"keyfn", NULL};

    if (ensure_engine_installed() < 0)
        return -1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &keyfn))
        return -1;
    Py_XDECREF(self->queue);
    Py_XDECREF(self->pool);
    Py_XDECREF(self->keyfn);
    Py_XDECREF(self->hooks);
    self->queue = PyList_New(0);
    self->pool = PyList_New(0);
    if (self->queue == NULL || self->pool == NULL)
        return -1;
    Py_INCREF(keyfn);
    self->keyfn = keyfn;
    Py_INCREF(Py_None);
    self->hooks = Py_None;
    self->now = 0;
    self->seq_next = 0;
    self->events_executed = 0;
    return 0;
}

static void
Core_dealloc(CoreObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->queue);
    Py_XDECREF(self->pool);
    Py_XDECREF(self->keyfn);
    Py_XDECREF(self->hooks);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Core_traverse(CoreObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    Py_VISIT(self->pool);
    Py_VISIT(self->keyfn);
    Py_VISIT(self->hooks);
    return 0;
}

static int
Core_clear_gc(CoreObject *self)
{
    Py_CLEAR(self->queue);
    Py_CLEAR(self->pool);
    Py_CLEAR(self->keyfn);
    Py_CLEAR(self->hooks);
    return 0;
}

/* Recycle a dispatched/cancelled handle when the dispatch loop holds
 * the *sole* remaining reference, mirroring the pure loop's
 * `sys.getrefcount(call) == 2` guard (there: local + getrefcount arg;
 * here: our borrowed-into-owned single reference). */
static int
core_maybe_pool(CoreObject *self, CallObject *call)
{
    if (Py_REFCNT(call) == 1 &&
        PyList_GET_SIZE(self->pool) < POOL_MAX) {
        Py_INCREF(g_noop);
        REPRO_SETREF(call->fn, g_noop);
        Py_INCREF(g_empty_tuple);
        REPRO_SETREF(call->args, g_empty_tuple);
        if (PyList_Append(self->pool, (PyObject *)call) < 0)
            return -1;
    }
    return 0;
}

static int
core_compact(CoreObject *self)
{
    PyObject *queue = self->queue;
    Py_ssize_t n = PyList_GET_SIZE(queue);
    Py_ssize_t i;
    PyObject *live;

    if (n < COMPACT_MIN)
        return 0;
    live = PyList_New(0);
    if (live == NULL)
        return -1;
    for (i = 0; i < n; i++) {
        PyObject *entry = PyList_GET_ITEM(queue, i);
        PyObject *callobj = PyTuple_GET_ITEM(entry, 2);
        int dead;
        if (Py_TYPE(callobj) == &CallType) {
            dead = ((CallObject *)callobj)->cancelled;
        } else {
            PyObject *flag = PyObject_GetAttr(callobj, s_cancelled);
            if (flag == NULL)
                goto fail;
            dead = PyObject_IsTrue(flag);
            Py_DECREF(flag);
            if (dead < 0)
                goto fail;
        }
        if (!dead && PyList_Append(live, entry) < 0)
            goto fail;
    }
    if (PyList_GET_SIZE(live) * 2 <= n) {
        if (PyList_SetSlice(queue, 0, n, live) < 0)
            goto fail;
        if (heap_heapify(queue) < 0)
            goto fail;
    }
    Py_DECREF(live);
    return 0;
fail:
    Py_DECREF(live);
    return -1;
}

static PyObject *
sched_err_negative(PyObject *delay)
{
    PyObject *msg = PyUnicode_FromFormat("negative delay: %S", delay);
    if (msg != NULL) {
        PyErr_SetObject(g_scheduling_error, msg);
        Py_DECREF(msg);
    }
    return NULL;
}

static int
err_backwards(void)
{
    PyObject *msg = PyUnicode_FromString(
        "event queue went backwards in time");
    if (msg != NULL) {
        PyErr_SetObject(g_scheduling_error, msg);
        Py_DECREF(msg);
    }
    return -1;
}

static int
err_deadlock(PyObject *event)
{
    PyObject *msg = PyUnicode_FromFormat(
        "event queue drained; %R never triggered", event);
    if (msg != NULL) {
        PyErr_SetObject(g_deadlock, msg);
        Py_DECREF(msg);
    }
    return -1;
}

static PyObject *
Core_schedule(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    long long delay_ll, seq, key_ll, time_ll;
    int key_fits, overflow;
    PyObject *key_obj, *cargs, *time_obj, *entry;
    CallObject *call;
    Py_ssize_t i, psize;

    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() requires a delay and a callable");
        return NULL;
    }
    PyObject *delay = args[0];
    if (PyLong_CheckExact(delay)) {
        delay_ll = PyLong_AsLongLongAndOverflow(delay, &overflow);
        if (overflow) {
            PyErr_SetString(PyExc_OverflowError,
                            "delay out of native range");
            return NULL;
        }
        if (delay_ll == -1 && PyErr_Occurred())
            return NULL;
        if (delay_ll < 0)
            return sched_err_negative(delay);
    }
    else {
        int neg = PyObject_RichCompareBool(delay, g_zero, Py_LT);
        if (neg < 0)
            return NULL;
        if (neg)
            return sched_err_negative(delay);
        PyObject *num = PyNumber_Long(delay);
        if (num == NULL)
            return NULL;
        delay_ll = PyLong_AsLongLongAndOverflow(num, &overflow);
        Py_DECREF(num);
        if (overflow) {
            PyErr_SetString(PyExc_OverflowError,
                            "delay out of native range");
            return NULL;
        }
        if (delay_ll == -1 && PyErr_Occurred())
            return NULL;
    }

    seq = self->seq_next;
    self->seq_next = seq + 1;

    if (self->keyfn == Py_None) {
        key_ll = seq;
        key_fits = 1;
        key_obj = PyLong_FromLongLong(seq);
        if (key_obj == NULL)
            return NULL;
    }
    else {
        PyObject *seq_obj = PyLong_FromLongLong(seq);
        if (seq_obj == NULL)
            return NULL;
        key_obj = PyObject_CallOneArg(self->keyfn, seq_obj);
        Py_DECREF(seq_obj);
        if (key_obj == NULL)
            return NULL;
        if (PyLong_Check(key_obj)) {
            key_ll = PyLong_AsLongLongAndOverflow(key_obj, &overflow);
            if (key_ll == -1 && !overflow && PyErr_Occurred()) {
                Py_DECREF(key_obj);
                return NULL;
            }
            key_fits = !overflow;
            if (overflow)
                key_ll = 0;
        }
        else {
            key_fits = 0;
            key_ll = 0;
        }
    }

    time_ll = self->now + delay_ll;

    psize = PyList_GET_SIZE(self->pool);
    if (psize > 0) {
        call = (CallObject *)PyList_GET_ITEM(self->pool, psize - 1);
        Py_INCREF(call);
        if (PyList_SetSlice(self->pool, psize - 1, psize, NULL) < 0) {
            Py_DECREF(call);
            Py_DECREF(key_obj);
            return NULL;
        }
    }
    else {
        call = PyObject_GC_New(CallObject, &CallType);
        if (call == NULL) {
            Py_DECREF(key_obj);
            return NULL;
        }
        call->key = NULL;
        call->fn = NULL;
        call->args = NULL;
        PyObject_GC_Track((PyObject *)call);
    }

    cargs = PyTuple_New(nargs - 2);
    if (cargs == NULL) {
        Py_DECREF(call);
        Py_DECREF(key_obj);
        return NULL;
    }
    for (i = 2; i < nargs; i++) {
        Py_INCREF(args[i]);
        PyTuple_SET_ITEM(cargs, i - 2, args[i]);
    }

    call->time = time_ll;
    call->heap_time = time_ll;
    call->seq = seq;
    call->key_ll = key_ll;
    call->key_fits = key_fits;
    call->cancelled = 0;
    Py_XDECREF(call->key);
    call->key = key_obj;                 /* steals */
    Py_INCREF(args[1]);
    Py_XDECREF(call->fn);
    call->fn = args[1];
    Py_XDECREF(call->args);
    call->args = cargs;                  /* steals */

    time_obj = PyLong_FromLongLong(time_ll);
    if (time_obj == NULL) {
        Py_DECREF(call);
        return NULL;
    }
    entry = PyTuple_New(3);
    if (entry == NULL) {
        Py_DECREF(time_obj);
        Py_DECREF(call);
        return NULL;
    }
    PyTuple_SET_ITEM(entry, 0, time_obj);
    Py_INCREF(call->key);
    PyTuple_SET_ITEM(entry, 1, call->key);
    Py_INCREF(call);
    PyTuple_SET_ITEM(entry, 2, (PyObject *)call);
    if (heap_push(self->queue, entry) < 0) {
        Py_DECREF(entry);
        Py_DECREF(call);
        return NULL;
    }
    Py_DECREF(entry);

    if (!(seq & COMPACT_MASK)) {
        if (core_compact(self) < 0) {
            Py_DECREF(call);
            return NULL;
        }
    }
    if (self->hooks != Py_None) {
        PyObject *now_obj = PyLong_FromLongLong(self->now);
        PyObject *r;
        if (now_obj == NULL) {
            Py_DECREF(call);
            return NULL;
        }
        r = PyObject_CallMethodObjArgs(self->hooks, s_on_schedule,
                                       now_obj, (PyObject *)call, NULL);
        Py_DECREF(now_obj);
        if (r == NULL) {
            Py_DECREF(call);
            return NULL;
        }
        Py_DECREF(r);
    }
    return (PyObject *)call;
}

/* Re-key a handle whose authoritative time was moved past its heap
 * position by reschedule(): push a fresh (time, key, call) entry at
 * call->time, exactly as the pure loops' `heappush(queue, (call.time,
 * call.key, call))`.  Returns 0 on success, -1 on error. */
static int
core_repush_deferred(CoreObject *self, CallObject *call)
{
    PyObject *time_obj, *entry;

    call->heap_time = call->time;
    time_obj = PyLong_FromLongLong(call->time);
    if (time_obj == NULL)
        return -1;
    entry = PyTuple_New(3);
    if (entry == NULL) {
        Py_DECREF(time_obj);
        return -1;
    }
    PyTuple_SET_ITEM(entry, 0, time_obj);
    Py_INCREF(call->key);
    PyTuple_SET_ITEM(entry, 1, call->key);
    Py_INCREF(call);
    PyTuple_SET_ITEM(entry, 2, (PyObject *)call);
    if (heap_push(self->queue, entry) < 0) {
        Py_DECREF(entry);
        return -1;
    }
    Py_DECREF(entry);
    return 0;
}

static PyObject *
Core_reschedule(CoreObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    long long delay_ll, new_time;
    int overflow;
    CallObject *call;
    PyObject *delay, *fn, *cargs, *result;
    PyObject **argv;
    Py_ssize_t i, extra;

    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "reschedule() requires a call and a delay");
        return NULL;
    }
    if (Py_TYPE(args[0]) != &CallType) {
        PyErr_SetString(PyExc_TypeError,
                        "reschedule() requires a ScheduledCall");
        return NULL;
    }
    call = (CallObject *)args[0];
    delay = args[1];
    if (PyLong_CheckExact(delay)) {
        delay_ll = PyLong_AsLongLongAndOverflow(delay, &overflow);
        if (overflow) {
            PyErr_SetString(PyExc_OverflowError,
                            "delay out of native range");
            return NULL;
        }
        if (delay_ll == -1 && PyErr_Occurred())
            return NULL;
        if (delay_ll < 0)
            return sched_err_negative(delay);
    }
    else {
        int neg = PyObject_RichCompareBool(delay, g_zero, Py_LT);
        if (neg < 0)
            return NULL;
        if (neg)
            return sched_err_negative(delay);
        PyObject *num = PyNumber_Long(delay);
        if (num == NULL)
            return NULL;
        delay_ll = PyLong_AsLongLongAndOverflow(num, &overflow);
        Py_DECREF(num);
        if (overflow) {
            PyErr_SetString(PyExc_OverflowError,
                            "delay out of native range");
            return NULL;
        }
        if (delay_ll == -1 && PyErr_Occurred())
            return NULL;
    }
    if (call->cancelled) {
        PyObject *msg = PyUnicode_FromString(
            "reschedule() on a cancelled call");
        if (msg != NULL) {
            PyErr_SetObject(g_scheduling_error, msg);
            Py_DECREF(msg);
        }
        return NULL;
    }

    new_time = self->now + delay_ll;
    if (new_time >= call->time) {
        /* Defer in place: the stale heap entry (still keyed at
         * heap_time) is re-keyed lazily when a dispatch loop pops it. */
        call->time = new_time;
        if (self->hooks != Py_None) {
            PyObject *now_obj = PyLong_FromLongLong(self->now);
            PyObject *r;
            if (now_obj == NULL)
                return NULL;
            r = PyObject_CallMethodObjArgs(self->hooks, s_on_schedule,
                                           now_obj, (PyObject *)call,
                                           NULL);
            Py_DECREF(now_obj);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
        }
        Py_INCREF(call);
        return (PyObject *)call;
    }

    /* Earlier target: fall back to cancel + fresh schedule (the heap
     * cannot move an entry forward lazily). */
    fn = call->fn;
    cargs = call->args;
    Py_INCREF(fn);
    Py_INCREF(cargs);
    call->cancelled = 1;
    Py_INCREF(g_noop);
    REPRO_SETREF(call->fn, g_noop);
    Py_INCREF(g_empty_tuple);
    REPRO_SETREF(call->args, g_empty_tuple);

    extra = PyTuple_GET_SIZE(cargs);
    argv = PyMem_Malloc((size_t)(extra + 2) * sizeof(PyObject *));
    if (argv == NULL) {
        Py_DECREF(fn);
        Py_DECREF(cargs);
        return PyErr_NoMemory();
    }
    argv[0] = delay;
    argv[1] = fn;
    for (i = 0; i < extra; i++)
        argv[i + 2] = PyTuple_GET_ITEM(cargs, i);
    result = Core_schedule(self, argv, extra + 2);
    PyMem_Free(argv);
    Py_DECREF(fn);
    Py_DECREF(cargs);
    return result;
}

/* Dispatch the head event through call->fn(*call->args); -1 error. */
static int
core_dispatch(CoreObject *self, CallObject *call, long long time)
{
    PyObject *fn, *cargs, *res;

    if (time < self->now)
        return err_backwards();
    self->now = time;
    self->events_executed += 1;
    fn = call->fn;
    cargs = call->args;
    Py_INCREF(fn);
    Py_INCREF(cargs);
    res = PyObject_Call(fn, cargs, NULL);
    Py_DECREF(fn);
    Py_DECREF(cargs);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static int
core_on_dispatch_hook(CoreObject *self, CallObject *call, long long time)
{
    PyObject *t, *r;

    t = PyLong_FromLongLong(time);
    if (t == NULL)
        return -1;
    r = PyObject_CallMethodObjArgs(self->hooks, s_on_dispatch, t,
                                   (PyObject *)call, NULL);
    Py_DECREF(t);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* The single cancelled-entry skip point: execute the next live
 * callback.  Returns 1 if one ran, 0 on empty queue, -1 on error. */
static int
core_step_internal(CoreObject *self)
{
    PyObject *queue = self->queue;

    while (PyList_GET_SIZE(queue) > 0) {
        PyObject *entry = heap_pop(queue);
        CallObject *call;
        long long time;

        if (entry == NULL)
            return -1;
        call = (CallObject *)PyTuple_GET_ITEM(entry, 2);
        Py_INCREF(call);
        time = call->time;
        /* Mirror the pure loop's unpack-and-discard of the tuple. */
        Py_DECREF(entry);
        if (call->cancelled) {
            if (core_maybe_pool(self, call) < 0) {
                Py_DECREF(call);
                return -1;
            }
            Py_DECREF(call);
            continue;
        }
        if (call->time != call->heap_time) {
            /* Deferred by reschedule(): re-key to the new time. */
            if (core_repush_deferred(self, call) < 0) {
                Py_DECREF(call);
                return -1;
            }
            Py_DECREF(call);
            continue;
        }
        if (time < self->now) {
            Py_DECREF(call);
            return err_backwards();
        }
        self->now = time;
        self->events_executed += 1;
        if (self->hooks != Py_None) {
            if (core_on_dispatch_hook(self, call, time) < 0) {
                Py_DECREF(call);
                return -1;
            }
        }
        {
            PyObject *fn = call->fn, *cargs = call->args, *res;
            Py_INCREF(fn);
            Py_INCREF(cargs);
            res = PyObject_Call(fn, cargs, NULL);
            Py_DECREF(fn);
            Py_DECREF(cargs);
            if (res == NULL) {
                Py_DECREF(call);
                return -1;
            }
            Py_DECREF(res);
        }
        if (core_maybe_pool(self, call) < 0) {
            Py_DECREF(call);
            return -1;
        }
        Py_DECREF(call);
        return 1;
    }
    return 0;
}

static PyObject *
Core_step(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    int r = core_step_internal(self);
    if (r < 0)
        return NULL;
    return PyBool_FromLong(r);
}

static PyObject *
Core_run_until(CoreObject *self, PyObject *until)
{
    long long until_ll;
    int overflow;
    PyObject *queue = self->queue;

    if (PyLong_Check(until)) {
        until_ll = PyLong_AsLongLongAndOverflow(until, &overflow);
        if (overflow) {
            PyErr_SetString(PyExc_OverflowError,
                            "until out of native range");
            return NULL;
        }
        if (until_ll == -1 && PyErr_Occurred())
            return NULL;
    }
    else {
        PyObject *num = PyNumber_Index(until);
        if (num == NULL)
            return NULL;
        until_ll = PyLong_AsLongLongAndOverflow(num, &overflow);
        Py_DECREF(num);
        if (overflow) {
            PyErr_SetString(PyExc_OverflowError,
                            "until out of native range");
            return NULL;
        }
        if (until_ll == -1 && PyErr_Occurred())
            return NULL;
    }
    if (until_ll < self->now) {
        PyObject *msg = PyUnicode_FromFormat(
            "until=%S is in the past", until);
        if (msg != NULL) {
            PyErr_SetObject(g_scheduling_error, msg);
            Py_DECREF(msg);
        }
        return NULL;
    }

    while (PyList_GET_SIZE(queue) > 0) {
        PyObject *entry = PyList_GET_ITEM(queue, 0);
        CallObject *call;
        long long time;
        PyObject *popped;

        Py_INCREF(entry);
        call = (CallObject *)PyTuple_GET_ITEM(entry, 2);
        Py_INCREF(call);
        if (call->cancelled) {
            popped = heap_pop(queue);
            if (popped == NULL) {
                Py_DECREF(call);
                Py_DECREF(entry);
                return NULL;
            }
            Py_DECREF(popped);
            /* The pure loop's `entry` local keeps the tuple alive
             * through its refcount check, so run(until) never pools a
             * cancelled head; our live `entry` reference reproduces
             * that (the pool condition can never fire here). */
            if (core_maybe_pool(self, call) < 0) {
                Py_DECREF(call);
                Py_DECREF(entry);
                return NULL;
            }
            Py_DECREF(call);
            Py_DECREF(entry);
            continue;
        }
        if (call->time != call->heap_time) {
            /* Deferred by reschedule(): re-key to the new time. */
            popped = heap_pop(queue);
            if (popped == NULL) {
                Py_DECREF(call);
                Py_DECREF(entry);
                return NULL;
            }
            Py_DECREF(popped);
            if (core_repush_deferred(self, call) < 0) {
                Py_DECREF(call);
                Py_DECREF(entry);
                return NULL;
            }
            Py_DECREF(call);
            Py_DECREF(entry);
            continue;
        }
        time = call->time;
        if (time > until_ll) {
            Py_DECREF(call);
            Py_DECREF(entry);
            break;
        }
        popped = heap_pop(queue);
        if (popped == NULL) {
            Py_DECREF(call);
            Py_DECREF(entry);
            return NULL;
        }
        Py_DECREF(popped);
        if (time < self->now) {
            Py_DECREF(call);
            Py_DECREF(entry);
            err_backwards();
            return NULL;
        }
        self->now = time;
        self->events_executed += 1;
        if (self->hooks != Py_None) {
            if (core_on_dispatch_hook(self, call, time) < 0) {
                Py_DECREF(call);
                Py_DECREF(entry);
                return NULL;
            }
        }
        {
            PyObject *fn = call->fn, *cargs = call->args, *res;
            Py_INCREF(fn);
            Py_INCREF(cargs);
            res = PyObject_Call(fn, cargs, NULL);
            Py_DECREF(fn);
            Py_DECREF(cargs);
            if (res == NULL) {
                Py_DECREF(call);
                Py_DECREF(entry);
                return NULL;
            }
            Py_DECREF(res);
        }
        /* Never pools: `entry` is still alive (see above). */
        if (core_maybe_pool(self, call) < 0) {
            Py_DECREF(call);
            Py_DECREF(entry);
            return NULL;
        }
        Py_DECREF(call);
        Py_DECREF(entry);
    }
    self->now = until_ll;
    Py_RETURN_NONE;
}

static PyObject *
Core_run_all(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *queue = self->queue;

    for (;;) {
        if (self->hooks != Py_None) {
            /* Hooks installed (possibly mid-run): take the fully-
             * guarded path for the remaining events. */
            for (;;) {
                int r = core_step_internal(self);
                if (r < 0)
                    return NULL;
                if (r == 0)
                    Py_RETURN_NONE;
            }
        }
        if (PyList_GET_SIZE(queue) == 0)
            break;
        {
            PyObject *entry = heap_pop(queue);
            CallObject *call;
            long long time;

            if (entry == NULL)
                return NULL;
            call = (CallObject *)PyTuple_GET_ITEM(entry, 2);
            Py_INCREF(call);
            time = call->time;
            Py_DECREF(entry);
            if (call->cancelled) {
                if (core_maybe_pool(self, call) < 0) {
                    Py_DECREF(call);
                    return NULL;
                }
                Py_DECREF(call);
                continue;
            }
            if (call->time != call->heap_time) {
                /* Deferred by reschedule(): re-key to the new time. */
                if (core_repush_deferred(self, call) < 0) {
                    Py_DECREF(call);
                    return NULL;
                }
                Py_DECREF(call);
                continue;
            }
            if (core_dispatch(self, call, time) < 0) {
                Py_DECREF(call);
                return NULL;
            }
            if (core_maybe_pool(self, call) < 0) {
                Py_DECREF(call);
                return NULL;
            }
            Py_DECREF(call);
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
Core_run_until_triggered(CoreObject *self, PyObject *event)
{
    PyObject *queue = self->queue;

    for (;;) {
        PyObject *v, *e;
        int still_pending;

        v = PyObject_GetAttr(event, s_value);
        if (v == NULL)
            return NULL;
        still_pending = (v == g_pending);
        Py_DECREF(v);
        if (still_pending) {
            e = PyObject_GetAttr(event, s_exc);
            if (e == NULL)
                return NULL;
            still_pending = (e == Py_None);
            Py_DECREF(e);
        }
        if (!still_pending)
            break;

        if (self->hooks != Py_None) {
            int r = core_step_internal(self);
            if (r < 0)
                return NULL;
            if (r == 0) {
                err_deadlock(event);
                return NULL;
            }
            continue;
        }

        /* Hooks-off fast loop: pop to the next live entry. */
        {
            CallObject *call = NULL;
            long long time = 0;

            for (;;) {
                PyObject *entry;
                if (PyList_GET_SIZE(queue) == 0) {
                    err_deadlock(event);
                    return NULL;
                }
                entry = heap_pop(queue);
                if (entry == NULL)
                    return NULL;
                call = (CallObject *)PyTuple_GET_ITEM(entry, 2);
                Py_INCREF(call);
                time = call->time;
                Py_DECREF(entry);
                if (!call->cancelled) {
                    if (call->time == call->heap_time)
                        break;
                    /* Deferred by reschedule(): re-key and rescan. */
                    if (core_repush_deferred(self, call) < 0) {
                        Py_DECREF(call);
                        return NULL;
                    }
                    Py_DECREF(call);
                    continue;
                }
                if (core_maybe_pool(self, call) < 0) {
                    Py_DECREF(call);
                    return NULL;
                }
                Py_DECREF(call);
            }
            if (core_dispatch(self, call, time) < 0) {
                Py_DECREF(call);
                return NULL;
            }
            if (core_maybe_pool(self, call) < 0) {
                Py_DECREF(call);
                return NULL;
            }
            Py_DECREF(call);
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
Core_peek_time(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *queue = self->queue;

    while (PyList_GET_SIZE(queue) > 0) {
        PyObject *entry = PyList_GET_ITEM(queue, 0);
        CallObject *call = (CallObject *)PyTuple_GET_ITEM(entry, 2);
        PyObject *popped;

        if (!call->cancelled) {
            if (call->time == call->heap_time)
                return PyLong_FromLongLong(call->time);
            /* Deferred by reschedule(): re-key to the new time. */
            Py_INCREF(call);
            popped = heap_pop(queue);
            if (popped == NULL) {
                Py_DECREF(call);
                return NULL;
            }
            Py_DECREF(popped);
            if (core_repush_deferred(self, call) < 0) {
                Py_DECREF(call);
                return NULL;
            }
            Py_DECREF(call);
            continue;
        }
        /* Cancelled heads are dropped without a pooling attempt,
         * exactly as the pure _peek_time does. */
        popped = heap_pop(queue);
        if (popped == NULL)
            return NULL;
        Py_DECREF(popped);
    }
    return PyLong_FromLongLong(self->now);
}

static PyObject *
Core_maybe_compact(CoreObject *self, PyObject *Py_UNUSED(ignored))
{
    if (core_compact(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Core_get_now(CoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->now);
}

static PyObject *
Core_get_events_executed(CoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->events_executed);
}

static PyObject *
Core_get_pooled_calls(CoreObject *self, void *closure)
{
    return PyLong_FromSsize_t(PyList_GET_SIZE(self->pool));
}

static PyObject *
Core_get_queue(CoreObject *self, void *closure)
{
    Py_INCREF(self->queue);
    return self->queue;
}

static PyObject *
Core_get_pool(CoreObject *self, void *closure)
{
    Py_INCREF(self->pool);
    return self->pool;
}

static PyObject *
Core_get_hooks(CoreObject *self, void *closure)
{
    Py_INCREF(self->hooks);
    return self->hooks;
}

static int
Core_set_hooks(CoreObject *self, PyObject *value, void *closure)
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete hooks");
        return -1;
    }
    Py_INCREF(value);
    REPRO_SETREF(self->hooks, value);
    return 0;
}

static PyMethodDef Core_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))Core_schedule,
     METH_FASTCALL, "schedule(delay_ns, fn, *args) -> ScheduledCall"},
    {"reschedule", (PyCFunction)(void (*)(void))Core_reschedule,
     METH_FASTCALL,
     "reschedule(call, delay_ns) -> ScheduledCall\n"
     "Move a pending call to fire after delay_ns; defers in place\n"
     "when the new time is not earlier (no cancelled tombstone)."},
    {"step", (PyCFunction)Core_step, METH_NOARGS,
     "Execute the next non-cancelled callback; False when empty."},
    {"run_all", (PyCFunction)Core_run_all, METH_NOARGS,
     "Drain the queue."},
    {"run_until", (PyCFunction)Core_run_until, METH_O,
     "Run until the clock reaches the deadline."},
    {"run_until_triggered", (PyCFunction)Core_run_until_triggered,
     METH_O, "Run until the event triggers."},
    {"peek_time", (PyCFunction)Core_peek_time, METH_NOARGS,
     "Earliest live event time (now when the queue is empty)."},
    {"maybe_compact", (PyCFunction)Core_maybe_compact, METH_NOARGS,
     "Drop lazily-cancelled heap entries once they are the majority."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Core_getset[] = {
    {"now", (getter)Core_get_now, NULL,
     "current simulated time (ns)", NULL},
    {"events_executed", (getter)Core_get_events_executed, NULL,
     "callbacks executed so far", NULL},
    {"pooled_calls", (getter)Core_get_pooled_calls, NULL,
     "ScheduledCall handles on the free list", NULL},
    {"queue", (getter)Core_get_queue, NULL,
     "the (time, key, call) heap list", NULL},
    {"pool", (getter)Core_get_pool, NULL,
     "the ScheduledCall free list", NULL},
    {"hooks", (getter)Core_get_hooks, (setter)Core_set_hooks,
     "observability hooks or None", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject CoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._corec.EngineCore",
    .tp_basicsize = sizeof(CoreObject),
    .tp_dealloc = (destructor)Core_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled event-loop core (clock + heap + free list).",
    .tp_traverse = (traverseproc)Core_traverse,
    .tp_clear = (inquiry)Core_clear_gc,
    .tp_methods = Core_methods,
    .tp_getset = Core_getset,
    .tp_init = (initproc)Core_init,
    .tp_new = PyType_GenericNew,
    .tp_free = PyObject_GC_Del,
};

/* ---------------------------------------------------------------- */
/* RFC 1071 Internet checksum                                        */
/* ---------------------------------------------------------------- */

static unsigned long long
rawsum_buf(const unsigned char *p, Py_ssize_t n)
{
    unsigned long long total = 0;
    Py_ssize_t i, even = n & ~(Py_ssize_t)1;

    for (i = 0; i < even; i += 2)
        total += ((unsigned long long)p[i] << 8) | p[i + 1];
    if (n & 1)
        total += (unsigned long long)p[n - 1] << 8;
    return total;
}

static unsigned long long
fold_u64(unsigned long long total)
{
    while (total > 0xFFFF)
        total = (total & 0xFFFF) + (total >> 16);
    return total;
}

static PyObject *
mod_raw_sum(PyObject *Py_UNUSED(module), PyObject *data)
{
    Py_buffer buf;
    unsigned long long total;

    if (PyObject_GetBuffer(data, &buf, PyBUF_SIMPLE) < 0)
        return NULL;
    total = rawsum_buf((const unsigned char *)buf.buf, buf.len);
    PyBuffer_Release(&buf);
    return PyLong_FromUnsignedLongLong(total);
}

/* Extract (data, initial=...) from a fastcall-with-keywords frame.
 * Mirrors the pure signatures `f(data, initial=0)`. */
static int
parse_data_initial(PyObject *const *args, Py_ssize_t nargs,
                   PyObject *kwnames, const char *name,
                   PyObject **data, PyObject **initial_obj)
{
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0, i;

    *data = NULL;
    *initial_obj = NULL;
    if (nargs > 2) {
        PyErr_Format(PyExc_TypeError,
                     "%s() takes data and an optional initial value", name);
        return -1;
    }
    if (nargs >= 1)
        *data = args[0];
    if (nargs == 2)
        *initial_obj = args[1];
    for (i = 0; i < nkw; i++) {
        PyObject *key = PyTuple_GET_ITEM(kwnames, i);
        PyObject *val = args[nargs + i];
        PyObject **slot;

        if (PyUnicode_CompareWithASCIIString(key, "data") == 0)
            slot = data;
        else if (PyUnicode_CompareWithASCIIString(key, "initial") == 0)
            slot = initial_obj;
        else {
            PyErr_Format(PyExc_TypeError,
                         "%s() got an unexpected keyword argument %R",
                         name, key);
            return -1;
        }
        if (*slot != NULL) {
            PyErr_Format(PyExc_TypeError,
                         "%s() got multiple values for argument %R",
                         name, key);
            return -1;
        }
        *slot = val;
    }
    if (*data == NULL) {
        PyErr_Format(PyExc_TypeError,
                     "%s() missing required argument 'data'", name);
        return -1;
    }
    return 0;
}

static int
checksum_parse(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
               const char *name, Py_buffer *buf, unsigned long long *initial)
{
    PyObject *data, *initial_obj;

    *initial = 0;
    if (parse_data_initial(args, nargs, kwnames, name, &data,
                           &initial_obj) < 0)
        return -1;
    if (initial_obj != NULL) {
        *initial = PyLong_AsUnsignedLongLong(initial_obj);
        if (*initial == (unsigned long long)-1 && PyErr_Occurred())
            return -1;
    }
    if (PyObject_GetBuffer(data, buf, PyBUF_SIMPLE) < 0)
        return -1;
    return 0;
}

static PyObject *
mod_internet_checksum(PyObject *Py_UNUSED(module), PyObject *const *args,
                      Py_ssize_t nargs, PyObject *kwnames)
{
    Py_buffer buf;
    unsigned long long initial, total;

    if (checksum_parse(args, nargs, kwnames, "internet_checksum", &buf,
                       &initial) < 0)
        return NULL;
    total = rawsum_buf((const unsigned char *)buf.buf, buf.len) + initial;
    PyBuffer_Release(&buf);
    return PyLong_FromUnsignedLong(
        (unsigned long)(~fold_u64(total) & 0xFFFF));
}

static PyObject *
mod_verify(PyObject *Py_UNUSED(module), PyObject *const *args,
           Py_ssize_t nargs, PyObject *kwnames)
{
    Py_buffer buf;
    unsigned long long initial, total;

    if (checksum_parse(args, nargs, kwnames, "verify", &buf, &initial) < 0)
        return NULL;
    total = rawsum_buf((const unsigned char *)buf.buf, buf.len) + initial;
    PyBuffer_Release(&buf);
    return PyBool_FromLong(fold_u64(total) == 0xFFFF);
}

static PyObject *
mod_combine(PyObject *Py_UNUSED(module), PyObject *parts)
{
    PyObject *iter, *item;
    unsigned long long total = 0;
    long long offset = 0;

    iter = PyObject_GetIter(parts);
    if (iter == NULL)
        return NULL;
    while ((item = PyIter_Next(iter)) != NULL) {
        PyObject *fast = PySequence_Fast(
            item, "combine() parts must be (sum, length) pairs");
        unsigned long long part_sum;
        long long length;

        Py_DECREF(item);
        if (fast == NULL)
            goto fail;
        if (PySequence_Fast_GET_SIZE(fast) != 2) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError,
                            "combine() parts must be (sum, length) pairs");
            goto fail;
        }
        part_sum = PyLong_AsUnsignedLongLong(
            PySequence_Fast_GET_ITEM(fast, 0));
        if (part_sum == (unsigned long long)-1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            goto fail;
        }
        length = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, 1));
        if (length == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            goto fail;
        }
        Py_DECREF(fast);
        if (offset & 1) {
            unsigned long long folded = fold_u64(part_sum);
            total += ((folded << 8) | (folded >> 8)) & 0xFFFF;
        }
        else {
            total += part_sum;
        }
        offset += length;
    }
    Py_DECREF(iter);
    if (PyErr_Occurred())
        return NULL;
    return PyLong_FromUnsignedLongLong(total);
fail:
    Py_DECREF(iter);
    return NULL;
}

/* ---------------------------------------------------------------- */
/* CRC-10 (ITU I.363 AAL3/4) and CRC-32 (IEEE 802.3)                 */
/* ---------------------------------------------------------------- */

#define CRC10_POLY 0x233
#define CRC32_POLY 0xEDB88320UL

static unsigned short crc10_table[256];
static unsigned long crc32_table[256];

static void
build_crc_tables(void)
{
    unsigned int byte, bit, crc;
    unsigned long crc32v;

    for (byte = 0; byte < 256; byte++) {
        crc = byte << 2;
        for (bit = 0; bit < 8; bit++) {
            if (crc & 0x200)
                crc = ((crc << 1) ^ CRC10_POLY) & 0x3FF;
            else
                crc = (crc << 1) & 0x3FF;
        }
        crc10_table[byte] = (unsigned short)crc;
    }
    for (byte = 0; byte < 256; byte++) {
        crc32v = byte;
        for (bit = 0; bit < 8; bit++) {
            if (crc32v & 1)
                crc32v = (crc32v >> 1) ^ CRC32_POLY;
            else
                crc32v >>= 1;
        }
        crc32_table[byte] = crc32v & 0xFFFFFFFFUL;
    }
}

static unsigned int
crc10_buf(const unsigned char *p, Py_ssize_t n, unsigned int crc)
{
    Py_ssize_t i;

    crc &= 0x3FF;
    for (i = 0; i < n; i++)
        crc = ((crc << 8) & 0x3FF) ^ crc10_table[((crc >> 2) ^ p[i]) & 0xFF];
    return crc;
}

static PyObject *
mod_crc10(PyObject *Py_UNUSED(module), PyObject *const *args,
          Py_ssize_t nargs, PyObject *kwnames)
{
    Py_buffer buf;
    PyObject *data, *initial_obj;
    long long initial = 0;
    unsigned int crc;

    if (parse_data_initial(args, nargs, kwnames, "crc10", &data,
                           &initial_obj) < 0)
        return NULL;
    if (initial_obj != NULL) {
        initial = PyLong_AsLongLong(initial_obj);
        if (initial == -1 && PyErr_Occurred())
            return NULL;
    }
    if (PyObject_GetBuffer(data, &buf, PyBUF_SIMPLE) < 0)
        return NULL;
    crc = crc10_buf((const unsigned char *)buf.buf, buf.len,
                    (unsigned int)(initial & 0x3FF));
    PyBuffer_Release(&buf);
    return PyLong_FromUnsignedLong(crc);
}

static PyObject *
mod_crc32(PyObject *Py_UNUSED(module), PyObject *const *args,
          Py_ssize_t nargs, PyObject *kwnames)
{
    Py_buffer buf;
    PyObject *data, *initial_obj;
    long long initial = 0;
    unsigned long crc;
    const unsigned char *p;
    Py_ssize_t i;

    if (parse_data_initial(args, nargs, kwnames, "crc32", &data,
                           &initial_obj) < 0)
        return NULL;
    if (initial_obj != NULL) {
        initial = PyLong_AsLongLong(initial_obj);
        if (initial == -1 && PyErr_Occurred())
            return NULL;
    }
    if (PyObject_GetBuffer(data, &buf, PyBUF_SIMPLE) < 0)
        return NULL;
    crc = ((unsigned long)initial ^ 0xFFFFFFFFUL) & 0xFFFFFFFFUL;
    p = (const unsigned char *)buf.buf;
    for (i = 0; i < buf.len; i++)
        crc = (crc >> 8) ^ crc32_table[(crc ^ p[i]) & 0xFF];
    PyBuffer_Release(&buf);
    return PyLong_FromUnsignedLong((crc ^ 0xFFFFFFFFUL) & 0xFFFFFFFFUL);
}

/* ---------------------------------------------------------------- */
/* AAL3/4 segmentation / reassembly                                  */
/* ---------------------------------------------------------------- */

#define AAL_CELL_PAYLOAD 44
#define AAL_CPCS_OVERHEAD 8

static int
ensure_aal_installed(void)
{
    if (g_reassembly_error == NULL || g_cell_cls == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "aal_install() has not been called");
        return -1;
    }
    return 0;
}

static int
reasm_err(const char *text)
{
    PyErr_SetString(g_reassembly_error, text);
    return -1;
}

static PyObject *
mod_aal_segment(PyObject *Py_UNUSED(module), PyObject *pdu)
{
    Py_buffer buf;
    Py_ssize_t length, n, i, padded;
    unsigned char *cpcs;
    PyObject *cells;

    if (ensure_aal_installed() < 0)
        return NULL;
    if (PyObject_GetBuffer(pdu, &buf, PyBUF_SIMPLE) < 0)
        return NULL;
    length = buf.len;
    if (length > 0xFFFF) {
        PyBuffer_Release(&buf);
        /* Matches int.to_bytes(2, "big") overflowing in the pure path. */
        PyErr_SetString(PyExc_OverflowError, "int too big to convert");
        return NULL;
    }
    n = (length + AAL_CPCS_OVERHEAD + AAL_CELL_PAYLOAD - 1)
        / AAL_CELL_PAYLOAD;
    if (n < 1)
        n = 1;
    padded = n * AAL_CELL_PAYLOAD;
    cpcs = PyMem_Malloc(padded);
    if (cpcs == NULL) {
        PyBuffer_Release(&buf);
        return PyErr_NoMemory();
    }
    memset(cpcs, 0, padded);
    cpcs[0] = 0xAA;
    cpcs[1] = 0x00;
    cpcs[2] = (unsigned char)(length >> 8);
    cpcs[3] = (unsigned char)(length & 0xFF);
    if (length > 0)
        memcpy(cpcs + 4, buf.buf, length);
    cpcs[4 + length] = 0x55;
    cpcs[5 + length] = 0x00;
    cpcs[6 + length] = (unsigned char)(length >> 8);
    cpcs[7 + length] = (unsigned char)(length & 0xFF);
    PyBuffer_Release(&buf);

    cells = PyList_New(n);
    if (cells == NULL) {
        PyMem_Free(cpcs);
        return NULL;
    }
    for (i = 0; i < n; i++) {
        PyObject *payload, *cell;
        unsigned int crc;

        payload = PyBytes_FromStringAndSize(
            (const char *)cpcs + i * AAL_CELL_PAYLOAD, AAL_CELL_PAYLOAD);
        if (payload == NULL)
            goto fail;
        crc = crc10_buf(cpcs + i * AAL_CELL_PAYLOAD, AAL_CELL_PAYLOAD, 0);
        cell = PyObject_CallFunction(
            g_cell_cls, "OiiO", payload, (int)crc, (int)i,
            (i == n - 1) ? Py_True : Py_False);
        Py_DECREF(payload);
        if (cell == NULL)
            goto fail;
        PyList_SET_ITEM(cells, i, cell);
    }
    PyMem_Free(cpcs);
    return cells;
fail:
    PyMem_Free(cpcs);
    Py_DECREF(cells);
    return NULL;
}

static PyObject *
mod_aal_reassemble(PyObject *Py_UNUSED(module), PyObject *cells)
{
    PyObject *fast = NULL, **payloads = NULL;
    Py_ssize_t n, i, body_len = 0, pos, length;
    unsigned char *body = NULL;
    PyObject *result = NULL, *lastflag;
    int truth;

    if (ensure_aal_installed() < 0)
        return NULL;
    fast = PySequence_Fast(cells, "reassemble() requires a cell sequence");
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    if (n == 0) {
        reasm_err("no cells");
        goto done;
    }
    payloads = PyMem_Calloc(n, sizeof(PyObject *));
    if (payloads == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (i = 0; i < n; i++) {
        PyObject *cell = PySequence_Fast_GET_ITEM(fast, i);
        PyObject *idx, *crcobj;
        long long idx_ll, crc_ll;
        int overflow, crc_equal;
        Py_buffer pbuf;
        unsigned int computed;

        idx = PyObject_GetAttr(cell, s_index);
        if (idx == NULL)
            goto done;
        idx_ll = PyLong_AsLongLongAndOverflow(idx, &overflow);
        if (idx_ll == -1 && !overflow && PyErr_Occurred()) {
            Py_DECREF(idx);
            goto done;
        }
        if (overflow || idx_ll != (long long)i) {
            PyObject *msg = PyUnicode_FromFormat(
                "cell sequence error at %zd (got %S)", i, idx);
            Py_DECREF(idx);
            if (msg != NULL) {
                PyErr_SetObject(g_reassembly_error, msg);
                Py_DECREF(msg);
            }
            goto done;
        }
        Py_DECREF(idx);

        payloads[i] = PyObject_GetAttr(cell, s_payload);
        if (payloads[i] == NULL)
            goto done;
        if (PyObject_GetBuffer(payloads[i], &pbuf, PyBUF_SIMPLE) < 0)
            goto done;
        computed = crc10_buf((const unsigned char *)pbuf.buf, pbuf.len, 0);
        body_len += pbuf.len;
        PyBuffer_Release(&pbuf);

        crcobj = PyObject_GetAttr(cell, s_crc);
        if (crcobj == NULL)
            goto done;
        if (PyLong_Check(crcobj)) {
            crc_ll = PyLong_AsLongLongAndOverflow(crcobj, &overflow);
            if (crc_ll == -1 && !overflow && PyErr_Occurred()) {
                Py_DECREF(crcobj);
                goto done;
            }
            crc_equal = !overflow && crc_ll == (long long)computed;
        }
        else {
            PyObject *comp = PyLong_FromUnsignedLong(computed);
            if (comp == NULL) {
                Py_DECREF(crcobj);
                goto done;
            }
            crc_equal = PyObject_RichCompareBool(comp, crcobj, Py_EQ);
            Py_DECREF(comp);
            if (crc_equal < 0) {
                Py_DECREF(crcobj);
                goto done;
            }
        }
        Py_DECREF(crcobj);
        if (!crc_equal) {
            PyObject *msg = PyUnicode_FromFormat(
                "CRC-10 failure in cell %zd", i);
            if (msg != NULL) {
                PyErr_SetObject(g_reassembly_error, msg);
                Py_DECREF(msg);
            }
            goto done;
        }
    }

    lastflag = PyObject_GetAttr(PySequence_Fast_GET_ITEM(fast, n - 1),
                                s_last);
    if (lastflag == NULL)
        goto done;
    truth = PyObject_IsTrue(lastflag);
    Py_DECREF(lastflag);
    if (truth < 0)
        goto done;
    if (!truth) {
        reasm_err("missing end-of-message cell");
        goto done;
    }

    body = PyMem_Malloc(body_len > 0 ? body_len : 1);
    if (body == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    pos = 0;
    for (i = 0; i < n; i++) {
        Py_buffer pbuf;
        if (PyObject_GetBuffer(payloads[i], &pbuf, PyBUF_SIMPLE) < 0)
            goto done;
        memcpy(body + pos, pbuf.buf, pbuf.len);
        pos += pbuf.len;
        PyBuffer_Release(&pbuf);
    }

    if (body_len < AAL_CPCS_OVERHEAD) {
        reasm_err("short CPCS PDU");
        goto done;
    }
    if (body[0] != 0xAA) {
        reasm_err("bad CPCS header tag");
        goto done;
    }
    length = ((Py_ssize_t)body[2] << 8) | body[3];
    if (4 + length > body_len) {
        reasm_err("CPCS length exceeds received data");
        goto done;
    }
    if (4 + length + 4 > body_len || body[4 + length] != 0x55) {
        reasm_err("bad CPCS trailer tag");
        goto done;
    }
    if (((((Py_ssize_t)body[4 + length + 2]) << 8) |
         body[4 + length + 3]) != length) {
        reasm_err("CPCS header/trailer length mismatch");
        goto done;
    }
    result = PyBytes_FromStringAndSize((const char *)body + 4, length);

done:
    if (payloads != NULL) {
        for (i = 0; i < n; i++)
            Py_XDECREF(payloads[i]);
        PyMem_Free(payloads);
    }
    PyMem_Free(body);
    Py_XDECREF(fast);
    return result;
}

/* ---------------------------------------------------------------- */
/* Mbuf chain helpers                                                */
/* ---------------------------------------------------------------- */

static int
ensure_mbuf_installed(void)
{
    if (g_mbuf_error == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "mbuf_install() has not been called");
        return -1;
    }
    return 0;
}

/* The Mbuf.data property, reading the slots directly; a freed mbuf is
 * routed back through the Python property so the exact use-after-free
 * diagnostics (including sanitizer provenance) are raised. */
static PyObject *
mbuf_get_data(PyObject *m)
{
    PyObject *freed, *cluster, *d;
    int is_freed;

    freed = PyObject_GetAttr(m, s_freed);
    if (freed == NULL)
        return NULL;
    is_freed = PyObject_IsTrue(freed);
    Py_DECREF(freed);
    if (is_freed < 0)
        return NULL;
    if (is_freed)
        return PyObject_GetAttr(m, s_data);
    cluster = PyObject_GetAttr(m, s_cluster);
    if (cluster == NULL)
        return NULL;
    if (cluster == Py_None) {
        Py_DECREF(cluster);
        d = PyObject_GetAttr(m, s_underdata);
    }
    else {
        d = PyObject_GetAttr(cluster, s_data);
        Py_DECREF(cluster);
    }
    return d;
}

/* Collect each mbuf's data object into a fresh list (raising any
 * use-after-free in chain order) and return the total byte length. */
static PyObject *
chain_collect(PyObject *mbufs, Py_ssize_t *total)
{
    PyObject *fast, *datas;
    Py_ssize_t n, i;

    fast = PySequence_Fast(mbufs, "expected a sequence of mbufs");
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    datas = PyList_New(n);
    if (datas == NULL) {
        Py_DECREF(fast);
        return NULL;
    }
    *total = 0;
    for (i = 0; i < n; i++) {
        PyObject *d = mbuf_get_data(PySequence_Fast_GET_ITEM(fast, i));
        Py_ssize_t len;

        if (d == NULL)
            goto fail;
        len = PyObject_Length(d);
        if (len < 0) {
            Py_DECREF(d);
            goto fail;
        }
        *total += len;
        PyList_SET_ITEM(datas, i, d);
    }
    Py_DECREF(fast);
    return datas;
fail:
    Py_DECREF(fast);
    Py_DECREF(datas);
    return NULL;
}

static PyObject *
mod_chain_length(PyObject *Py_UNUSED(module), PyObject *mbufs)
{
    Py_ssize_t total;
    PyObject *datas = chain_collect(mbufs, &total);

    if (datas == NULL)
        return NULL;
    Py_DECREF(datas);
    return PyLong_FromSsize_t(total);
}

static PyObject *
datas_to_bytes(PyObject *datas, Py_ssize_t total)
{
    PyObject *result = PyBytes_FromStringAndSize(NULL, total);
    char *out;
    Py_ssize_t i, n, pos = 0;

    if (result == NULL)
        return NULL;
    out = PyBytes_AS_STRING(result);
    n = PyList_GET_SIZE(datas);
    for (i = 0; i < n; i++) {
        Py_buffer buf;
        if (PyObject_GetBuffer(PyList_GET_ITEM(datas, i), &buf,
                               PyBUF_SIMPLE) < 0) {
            Py_DECREF(result);
            return NULL;
        }
        memcpy(out + pos, buf.buf, buf.len);
        pos += buf.len;
        PyBuffer_Release(&buf);
    }
    return result;
}

static PyObject *
mod_chain_to_bytes(PyObject *Py_UNUSED(module), PyObject *mbufs)
{
    Py_ssize_t total;
    PyObject *datas = chain_collect(mbufs, &total);
    PyObject *result;

    if (datas == NULL)
        return NULL;
    result = datas_to_bytes(datas, total);
    Py_DECREF(datas);
    return result;
}

static PyObject *
mod_chain_slice(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *mbufs, *datas, *joined, *result;
    Py_ssize_t offset, length, total;

    if (ensure_mbuf_installed() < 0)
        return NULL;
    if (!PyArg_ParseTuple(args, "Onn", &mbufs, &offset, &length))
        return NULL;
    /* Total length first: a freed mbuf raises use-after-free before
     * the bounds check, exactly as the pure property access order. */
    datas = chain_collect(mbufs, &total);
    if (datas == NULL)
        return NULL;
    if (offset < 0 || length < 0 || offset + length > total) {
        PyObject *msg = PyUnicode_FromFormat(
            "slice [%zd:%zd] outside chain of %zd bytes",
            offset, offset + length, total);
        Py_DECREF(datas);
        if (msg != NULL) {
            PyErr_SetObject(g_mbuf_error, msg);
            Py_DECREF(msg);
        }
        return NULL;
    }
    joined = datas_to_bytes(datas, total);
    Py_DECREF(datas);
    if (joined == NULL)
        return NULL;
    result = PyBytes_FromStringAndSize(
        PyBytes_AS_STRING(joined) + offset, length);
    Py_DECREF(joined);
    return result;
}

static PyObject *
mod_chain_spans(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *mbufs, *fast = NULL, *datas = NULL, *result = NULL;
    Py_ssize_t offset, length, total, n, i, pos, remaining;

    if (ensure_mbuf_installed() < 0)
        return NULL;
    if (!PyArg_ParseTuple(args, "Onn", &mbufs, &offset, &length))
        return NULL;
    datas = chain_collect(mbufs, &total);
    if (datas == NULL)
        return NULL;
    if (offset < 0 || length < 0 || offset + length > total) {
        Py_DECREF(datas);
        PyErr_SetString(g_mbuf_error, "span outside chain");
        return NULL;
    }
    fast = PySequence_Fast(mbufs, "expected a sequence of mbufs");
    if (fast == NULL) {
        Py_DECREF(datas);
        return NULL;
    }
    result = PyList_New(0);
    if (result == NULL)
        goto done;
    n = PySequence_Fast_GET_SIZE(fast);
    pos = 0;
    remaining = length;
    for (i = 0; i < n; i++) {
        PyObject *m = PySequence_Fast_GET_ITEM(fast, i);
        Py_ssize_t mlen = PyObject_Length(PyList_GET_ITEM(datas, i));
        Py_ssize_t start, take;
        PyObject *triple;

        if (mlen < 0) {
            Py_CLEAR(result);
            goto done;
        }
        if (remaining == 0)
            break;
        if (pos + mlen <= offset) {
            pos += mlen;
            continue;
        }
        start = offset - pos;
        if (start < 0)
            start = 0;
        take = mlen - start;
        if (take > remaining)
            take = remaining;
        triple = Py_BuildValue("(Onn)", m, start, take);
        if (triple == NULL) {
            Py_CLEAR(result);
            goto done;
        }
        if (PyList_Append(result, triple) < 0) {
            Py_DECREF(triple);
            Py_CLEAR(result);
            goto done;
        }
        Py_DECREF(triple);
        remaining -= take;
        pos += mlen;
    }
done:
    Py_XDECREF(fast);
    Py_XDECREF(datas);
    return result;
}

static PyObject *
mod_chunk_sizes(PyObject *Py_UNUSED(module), PyObject *args)
{
    Py_ssize_t total, unit, remaining, take;
    PyObject *sizes, *num;

    if (!PyArg_ParseTuple(args, "nn", &total, &unit))
        return NULL;
    sizes = PyList_New(0);
    if (sizes == NULL)
        return NULL;
    if (total == 0) {
        num = PyLong_FromLong(0);
        if (num == NULL || PyList_Append(sizes, num) < 0) {
            Py_XDECREF(num);
            Py_DECREF(sizes);
            return NULL;
        }
        Py_DECREF(num);
        return sizes;
    }
    remaining = total;
    while (remaining > 0) {
        take = unit < remaining ? unit : remaining;
        num = PyLong_FromSsize_t(take);
        if (num == NULL || PyList_Append(sizes, num) < 0) {
            Py_XDECREF(num);
            Py_DECREF(sizes);
            return NULL;
        }
        Py_DECREF(num);
        remaining -= take;
    }
    return sizes;
}

/* ---------------------------------------------------------------- */
/* Install hooks + module definition                                 */
/* ---------------------------------------------------------------- */

static PyObject *
mod_engine_install(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *pending, *sched_err, *deadlock, *noop;

    if (!PyArg_ParseTuple(args, "OOOO", &pending, &sched_err,
                          &deadlock, &noop))
        return NULL;
    Py_INCREF(pending);
    REPRO_SETREF(g_pending, pending);
    Py_INCREF(sched_err);
    REPRO_SETREF(g_scheduling_error, sched_err);
    Py_INCREF(deadlock);
    REPRO_SETREF(g_deadlock, deadlock);
    Py_INCREF(noop);
    REPRO_SETREF(g_noop, noop);
    Py_RETURN_NONE;
}

static PyObject *
mod_mbuf_install(PyObject *Py_UNUSED(module), PyObject *mbuf_error)
{
    Py_INCREF(mbuf_error);
    REPRO_SETREF(g_mbuf_error, mbuf_error);
    Py_RETURN_NONE;
}

static PyObject *
mod_aal_install(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *reasm_error, *cell_cls;

    if (!PyArg_ParseTuple(args, "OO", &reasm_error, &cell_cls))
        return NULL;
    Py_INCREF(reasm_error);
    REPRO_SETREF(g_reassembly_error, reasm_error);
    Py_INCREF(cell_cls);
    REPRO_SETREF(g_cell_cls, cell_cls);
    Py_RETURN_NONE;
}

static PyMethodDef corec_methods[] = {
    {"engine_install", mod_engine_install, METH_VARARGS,
     "engine_install(pending, SchedulingError, Deadlock, noop)"},
    {"mbuf_install", mod_mbuf_install, METH_O,
     "mbuf_install(MbufError)"},
    {"aal_install", mod_aal_install, METH_VARARGS,
     "aal_install(ReassemblyError, Cell)"},
    {"raw_sum", mod_raw_sum, METH_O,
     "Unfolded 16-bit big-endian word sum of a buffer."},
    {"internet_checksum",
     (PyCFunction)(void (*)(void))mod_internet_checksum,
     METH_FASTCALL | METH_KEYWORDS,
     "internet_checksum(data, initial=0) -> int"},
    {"verify", (PyCFunction)(void (*)(void))mod_verify,
     METH_FASTCALL | METH_KEYWORDS, "verify(data, initial=0) -> bool"},
    {"combine", mod_combine, METH_O,
     "Combine (raw_sum, byte_length) chunk sums into one raw sum."},
    {"crc10", (PyCFunction)(void (*)(void))mod_crc10,
     METH_FASTCALL | METH_KEYWORDS, "crc10(data, initial=0) -> int"},
    {"crc32", (PyCFunction)(void (*)(void))mod_crc32,
     METH_FASTCALL | METH_KEYWORDS, "crc32(data, initial=0) -> int"},
    {"aal_segment", mod_aal_segment, METH_O,
     "Wrap a PDU in CPCS framing and split into SAR cells."},
    {"aal_reassemble", mod_aal_reassemble, METH_O,
     "Check and unwrap a cell train back into the datagram."},
    {"chain_length", mod_chain_length, METH_O,
     "Total data bytes across a list of mbufs."},
    {"chain_to_bytes", mod_chain_to_bytes, METH_O,
     "Concatenate a list of mbufs' data."},
    {"chain_slice", mod_chain_slice, METH_VARARGS,
     "chain_slice(mbufs, offset, length) -> bytes"},
    {"chain_spans", mod_chain_spans, METH_VARARGS,
     "chain_spans(mbufs, offset, length) -> [(mbuf, start, take)]"},
    {"chunk_sizes", mod_chunk_sizes, METH_VARARGS,
     "chunk_sizes(total, unit) -> [int]"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef corec_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native._corec",
    "Compiled hot core: event loop, checksums, AAL3/4, mbuf chains.",
    -1,
    corec_methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC
PyInit__corec(void)
{
    PyObject *m;

    /* Defining tp_richcompare suppresses the inherited hash; restore
     * object's identity hash (the pure ScheduledCall defines only
     * __lt__ and stays hashable). */
    CallType.tp_hash = PyBaseObject_Type.tp_hash;
    if (PyType_Ready(&CallType) < 0)
        return NULL;
    if (PyType_Ready(&CoreType) < 0)
        return NULL;
    build_crc_tables();

    g_empty_tuple = PyTuple_New(0);
    g_zero = PyLong_FromLong(0);
    if (g_empty_tuple == NULL || g_zero == NULL)
        return NULL;

#define INTERN(var, text)                       \
    do {                                        \
        (var) = PyUnicode_InternFromString(text); \
        if ((var) == NULL)                      \
            return NULL;                        \
    } while (0)
    INTERN(s_on_schedule, "on_schedule");
    INTERN(s_on_dispatch, "on_dispatch");
    INTERN(s_value, "_value");
    INTERN(s_exc, "_exc");
    INTERN(s_freed, "freed");
    INTERN(s_cluster, "cluster");
    INTERN(s_underdata, "_data");
    INTERN(s_data, "data");
    INTERN(s_payload, "payload");
    INTERN(s_crc, "crc");
    INTERN(s_index, "index");
    INTERN(s_last, "last");
    INTERN(s_cancelled, "cancelled");
#undef INTERN

    m = PyModule_Create(&corec_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&CallType);
    if (PyModule_AddObject(m, "ScheduledCall",
                           (PyObject *)&CallType) < 0) {
        Py_DECREF(&CallType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&CoreType);
    if (PyModule_AddObject(m, "EngineCore", (PyObject *)&CoreType) < 0) {
        Py_DECREF(&CoreType);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
