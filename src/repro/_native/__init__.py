"""Optional compiled hot core (C extension).

Nothing outside :mod:`repro.perf.native` may import this package — the
``repro lint`` layering rule enforces it.  Importing raises
:class:`ImportError` when the extension has not been built; the
dispatch module treats that as "pure Python only".
"""

from repro._native._corec import (  # noqa: F401
    EngineCore,
    ScheduledCall,
    aal_install,
    aal_reassemble,
    aal_segment,
    chain_length,
    chain_slice,
    chain_spans,
    chain_to_bytes,
    chunk_sizes,
    combine,
    crc10,
    crc32,
    engine_install,
    internet_checksum,
    mbuf_install,
    raw_sum,
    verify,
)
