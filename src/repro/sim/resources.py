"""Synchronization and queueing primitives built on the event kernel."""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["Store", "Semaphore", "Signal"]


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    Used for device queues (the IP input queue, adapter FIFO handoff,
    the wire itself) where a consumer process waits for work.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.puts = 0
        self.gets = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add *item*; wakes the oldest blocked getter, FIFO order."""
        self.puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that succeeds with the next item (immediately if one
        is queued, otherwise when a future ``put`` arrives)."""
        self.gets += 1
        ev = self.sim.event(name=f"{self.name}:get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Optional[Any]:
        """Pop the next item without blocking; None when empty."""
        if self._items:
            self.gets += 1
            return self._items.popleft()
        return None

    def peek(self) -> Optional[Any]:
        """The next item without removing it; None when empty."""
        return self._items[0] if self._items else None


class Semaphore:
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore value must be non-negative")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        """Event that succeeds once a unit is held."""
        ev = self.sim.event(name=f"{self.name}:acquire")
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a unit, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Signal:
    """A broadcast condition: many waiters, each ``fire`` wakes all.

    Unlike :class:`Event` it is reusable; this is the substrate for the
    kernel's ``sleep``/``wakeup`` channels.
    """

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._waiters: Deque[Event] = deque()

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        """Event that succeeds at the next :meth:`fire`."""
        ev = self.sim.event(name=f"{self.name}:wait")
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake every current waiter; returns how many were woken."""
        waiters, self._waiters = self._waiters, deque()
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)
