"""Preemptive priority CPU model.

The DECstation in the paper has a single R3000 CPU shared by hardware
interrupt handlers, software interrupts (the IP input queue), and user
processes executing in kernel or user mode.  The latency spans the paper
measures — in particular *IPQ* (software-interrupt dispatch latency) and
*Wakeup* (run-queue scheduling latency) — are consequences of this
sharing, so the CPU is modelled explicitly:

* Work is submitted as a :class:`Job` with a duration and a priority
  level (:class:`Priority`).
* The highest-priority ready job runs; arrival of a strictly
  higher-priority job preempts the running one, which keeps its remaining
  work and resumes later (this is how an ATM receive interrupt steals
  cycles from a user process mid-copy, exactly the "cache effects /
  overlap" structure the paper describes).
* Equal priorities are FIFO and non-preemptive with respect to each
  other, matching the BSD kernel's non-preemptive top half.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional

from repro.sim.engine import Event, ScheduledCall, Simulator

__all__ = ["Priority", "Job", "CPU"]


class Priority:
    """CPU priority levels; lower value = more urgent."""

    HARD_INTR = 0  #: hardware interrupt (device) handlers
    SOFT_INTR = 1  #: software interrupts (e.g. ipintr off the IP queue)
    KERNEL = 2     #: a process executing in the kernel (syscall path)
    USER = 3       #: a process executing user-mode code

    NAMES = {0: "hard_intr", 1: "soft_intr", 2: "kernel", 3: "user"}


class Job:
    """One piece of CPU work: a duration at a priority level.

    The job's :attr:`done` event triggers when the CPU has dedicated
    ``duration_ns`` of (possibly non-contiguous) time to it.
    """

    __slots__ = ("priority", "seq", "remaining", "done", "name",
                 "enqueued_at", "started")

    def __init__(self, priority: int, seq: int, duration_ns: int,
                 done: Event, name: str, enqueued_at: int):
        self.priority = priority
        self.seq = seq
        self.remaining = duration_ns
        self.done = done
        self.name = name
        self.enqueued_at = enqueued_at
        #: Whether the job has ever held the CPU (start vs resume hooks).
        self.started = False

    def __lt__(self, other: "Job") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)

    def __repr__(self) -> str:
        return (f"<Job {self.name!r} prio={self.priority} "
                f"remaining={self.remaining}ns>")


class CPU:
    """A single processor multiplexed between priority levels."""

    def __init__(self, sim: Simulator, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self._ready: List[Job] = []
        self._running: Optional[Job] = None
        self._completion: Optional[ScheduledCall] = None
        self._run_started_at = 0
        self._seq = itertools.count()
        # Accounting (diagnostics and utilization tests).
        self.busy_ns = 0
        self.preemptions = 0
        self.jobs_completed = 0
        #: CPU time by job label (a cycles-profile of the kernel).
        self.busy_by_label: dict = {}

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def run(self, duration_ns: int, priority: int = Priority.KERNEL,
            name: str = "work") -> Event:
        """Submit *duration_ns* of work; returns the completion event.

        Typical use from a simulated process::

            yield cpu.run(cost.copyin(n), Priority.KERNEL, "copyin")
        """
        if duration_ns < 0:
            raise ValueError(f"negative CPU work: {duration_ns}")
        done = self.sim.event(name=f"{self.name}:{name}")
        job = Job(priority, next(self._seq), int(duration_ns), done, name,
                  self.sim.now)
        heapq.heappush(self._ready, job)
        self._dispatch()
        return done

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when nothing is running or ready."""
        return self._running is None and not self._ready

    @property
    def running_job(self) -> Optional[Job]:
        """The job currently holding the CPU, if any."""
        return self._running

    def queue_depth(self, priority: Optional[int] = None) -> int:
        """Number of ready (not running) jobs, optionally per priority."""
        if priority is None:
            return len(self._ready)
        return sum(1 for job in self._ready if job.priority == priority)

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._running is not None:
            if not self._ready or self._ready[0].priority >= self._running.priority:
                return
            self._preempt()
        if not self._ready:
            return
        job = heapq.heappop(self._ready)
        self._running = job
        self._run_started_at = self.sim.now
        hooks = self.sim.hooks
        if hooks is not None:
            if job.started:
                hooks.on_job_resume(self.sim.now, self, job)
            else:
                hooks.on_job_start(self.sim.now, self, job)
        job.started = True
        self._completion = self.sim.schedule(
            job.remaining, self._complete, job
        )

    def _account(self, job: Job, elapsed: int) -> None:
        self.busy_ns += elapsed
        if elapsed:
            self.busy_by_label[job.name] = (
                self.busy_by_label.get(job.name, 0) + elapsed)

    def _preempt(self) -> None:
        job = self._running
        assert job is not None and self._completion is not None
        elapsed = self.sim.now - self._run_started_at
        job.remaining -= elapsed
        self._account(job, elapsed)
        self._completion.cancel()
        self._completion = None
        self._running = None
        self.preemptions += 1
        heapq.heappush(self._ready, job)
        if self.sim.hooks is not None:
            self.sim.hooks.on_job_preempt(self.sim.now, self, job)

    def _complete(self, job: Job) -> None:
        assert job is self._running
        self._account(job, self.sim.now - self._run_started_at)
        self._running = None
        self._completion = None
        self.jobs_completed += 1
        if self.sim.hooks is not None:
            self.sim.hooks.on_job_finish(self.sim.now, self, job)
        job.done.succeed()
        self._dispatch()
