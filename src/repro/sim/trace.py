"""Latency-span tracing.

The paper instruments the kernel by reading the 40 ns clock at span
boundaries (write syscall entry, start of TCP output, ...) and reporting
per-span averages over many round trips.  :class:`SpanTracer` reproduces
that methodology: code under measurement records named spans via clock
reads, and the tracer aggregates them per iteration and overall.

Span names used by the stack mirror the paper's tables:

* transmit side: ``tx.user``, ``tx.tcp.checksum``, ``tx.tcp.mcopy``,
  ``tx.tcp.segment``, ``tx.ip``, ``tx.atm`` (or ``tx.ether``)
* receive side: ``rx.atm``/``rx.ether``, ``rx.ipq``, ``rx.ip``,
  ``rx.tcp.checksum``, ``rx.tcp.segment``, ``rx.wakeup``, ``rx.user``
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import ClockCard

__all__ = ["SpanTracer", "SpanStats"]


class SpanStats:
    """Aggregate of one span name: count, total and mean microseconds."""

    __slots__ = ("name", "count", "total_us", "min_us", "max_us")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_us = 0.0
        self.min_us = float("inf")
        self.max_us = 0.0

    def add(self, duration_us: float) -> None:
        self.count += 1
        self.total_us += duration_us
        if duration_us < self.min_us:
            self.min_us = duration_us
        if duration_us > self.max_us:
            self.max_us = duration_us

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (f"<SpanStats {self.name} n={self.count} "
                f"mean={self.mean_us:.1f}us>")


class SpanTracer:
    """Records named latency spans with the measurement clock's precision.

    Spans are recorded as (start_ticks, end_ticks) pairs from a
    :class:`ClockCard`, so results carry the same 40 ns quantization the
    paper's numbers do.  ``begin``/``end`` use a token so overlapping
    spans of the same name (e.g. two in-flight segments) don't collide.
    """

    def __init__(self, clock: ClockCard, enabled: bool = True):
        self.clock = clock
        self.enabled = enabled
        self._stats: Dict[str, SpanStats] = {}
        self._raw: Dict[str, List[float]] = defaultdict(list)
        self.keep_raw = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str) -> Tuple[str, int]:
        """Start a span; returns a token to pass to :meth:`end`."""
        return (name, self.clock.read_ticks())

    def end(self, token: Tuple[str, int]) -> float:
        """Finish a span; returns its duration in microseconds."""
        name, start_ticks = token
        duration = self.clock.delta_us(start_ticks, self.clock.read_ticks())
        self.record_value(name, duration)
        return duration

    def record_value(self, name: str, duration_us: float) -> None:
        """Record an externally computed duration under *name*."""
        if not self.enabled:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanStats(name)
        stats.add(duration_us)
        if self.keep_raw:
            self._raw[name].append(duration_us)

    def record_between(self, name: str, start_ticks: int,
                       end_ticks: int) -> None:
        """Record a span from two raw tick readings."""
        self.record_value(name, self.clock.delta_us(start_ticks, end_ticks))

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def mean_us(self, name: str) -> float:
        """Mean duration of *name* in microseconds (0 if never seen)."""
        stats = self._stats.get(name)
        return stats.mean_us if stats else 0.0

    def total_us(self, name: str) -> float:
        stats = self._stats.get(name)
        return stats.total_us if stats else 0.0

    def count(self, name: str) -> int:
        stats = self._stats.get(name)
        return stats.count if stats else 0

    def stats(self, name: str) -> Optional[SpanStats]:
        return self._stats.get(name)

    def names(self) -> List[str]:
        return sorted(self._stats)

    def raw(self, name: str) -> List[float]:
        """Raw per-occurrence durations (requires ``keep_raw``)."""
        return list(self._raw.get(name, ()))

    def means(self) -> Dict[str, float]:
        """Mapping of every span name to its mean in microseconds."""
        return {name: s.mean_us for name, s in self._stats.items()}

    def reset(self) -> None:
        """Forget all recorded spans (e.g. after a warmup phase)."""
        self._stats.clear()
        self._raw.clear()
