"""Latency-span tracing.

The paper instruments the kernel by reading the 40 ns clock at span
boundaries (write syscall entry, start of TCP output, ...) and reporting
per-span averages over many round trips.  :class:`SpanTracer` reproduces
that methodology: code under measurement records named spans via clock
reads, and the tracer aggregates them per iteration and overall.

Span names used by the stack mirror the paper's tables:

* transmit side (Table 2): ``tx.user``, ``tx.tcp.checksum``,
  ``tx.tcp.mcopy``, ``tx.tcp.segment``, ``tx.ip``, ``tx.atm`` (or
  ``tx.ether``)
* receive side (Table 3): ``rx.atm``/``rx.ether``, ``rx.ipq``,
  ``rx.ip``, ``rx.tcp.checksum``, ``rx.tcp.segment``, ``rx.wakeup``,
  ``rx.user``

(ACK-path twins carry an ``.ack`` component: ``tx.ack.ip`` etc.)

The tracer is one producer of the unified observability pipeline
(:mod:`repro.obs`): when a :class:`~repro.obs.observer.Observer` is
attached it installs itself as :attr:`SpanTracer.sink` and every
recorded span is additionally streamed as a trace event, so the same
clock reads that build Tables 2/3 also render as timeline slices in
``chrome://tracing``/Perfetto.  :meth:`SpanTracer.snapshot` and
:meth:`SpanTracer.merge` support warmup-reset bookkeeping and multi-run
aggregation without losing data.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.sim.clock import ClockCard

__all__ = ["SpanTracer", "SpanStats"]


class SpanStats:
    """Aggregate of one span name: count, total and mean microseconds.

    ``min_us``/``max_us`` report ``0.0`` until the first recording (not
    ``inf``), so snapshots serialize to valid JSON.
    """

    __slots__ = ("name", "count", "total_us", "min_us", "max_us")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_us = 0.0
        self.min_us = 0.0
        self.max_us = 0.0

    def add(self, duration_us: float) -> None:
        if self.count == 0 or duration_us < self.min_us:
            self.min_us = duration_us
        if duration_us > self.max_us:
            self.max_us = duration_us
        self.count += 1
        self.total_us += duration_us

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """A JSON-serializable snapshot of this span's aggregate."""
        return {"count": self.count, "total_us": self.total_us,
                "mean_us": self.mean_us, "min_us": self.min_us,
                "max_us": self.max_us}

    def merge(self, other: Union["SpanStats", Mapping]) -> None:
        """Fold another aggregate (stats or snapshot dict) into this."""
        if isinstance(other, SpanStats):
            count, total = other.count, other.total_us
            omin, omax = other.min_us, other.max_us
        else:
            count, total = other["count"], other["total_us"]
            omin, omax = other["min_us"], other["max_us"]
        if count == 0:
            return
        if self.count == 0:
            self.min_us, self.max_us = omin, omax
        else:
            self.min_us = min(self.min_us, omin)
            self.max_us = max(self.max_us, omax)
        self.count += count
        self.total_us += total

    def __repr__(self) -> str:
        return (f"<SpanStats {self.name} n={self.count} "
                f"mean={self.mean_us:.1f}us>")


class SpanTracer:
    """Records named latency spans with the measurement clock's precision.

    Spans are recorded as (start_ticks, end_ticks) pairs from a
    :class:`ClockCard`, so results carry the same 40 ns quantization the
    paper's numbers do.  ``begin``/``end`` use a token so overlapping
    spans of the same name (e.g. two in-flight segments) don't collide.

    When :attr:`sink` is set (by an attached observer), every recorded
    span is also forwarded as ``sink(name, duration_us, end_us)`` with
    *end_us* the simulated completion time, so exporters can place the
    span on an absolute timeline.  The sink survives :meth:`reset` —
    warmup spans stream to the pipeline even though the aggregate is
    cleared for steady-state measurement.
    """

    def __init__(self, clock: ClockCard, enabled: bool = True):
        self.clock = clock
        self.enabled = enabled
        self._stats: Dict[str, SpanStats] = {}
        self._raw: Dict[str, List[float]] = defaultdict(list)
        self.keep_raw = False
        #: Observability pipeline tap: ``sink(name, duration_us, end_us)``.
        self.sink: Optional[Callable[[str, float, float], None]] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str) -> Tuple[str, int]:
        """Start a span; returns a token to pass to :meth:`end`."""
        return (name, self.clock.read_ticks())

    def end(self, token: Tuple[str, int]) -> float:
        """Finish a span; returns its duration in microseconds."""
        name, start_ticks = token
        duration = self.clock.delta_us(start_ticks, self.clock.read_ticks())
        self.record_value(name, duration)
        return duration

    def record_value(self, name: str, duration_us: float,
                     end_us: Optional[float] = None) -> None:
        """Record an externally computed duration under *name*.

        *end_us* is the span's completion time in simulated
        microseconds; it defaults to "now" (which is correct for every
        in-stack call site) and is only consumed by the pipeline sink.
        """
        if not self.enabled:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanStats(name)
        stats.add(duration_us)
        if self.keep_raw:
            self._raw[name].append(duration_us)
        if self.sink is not None:
            if end_us is None:
                end_us = self.clock.sim.now / 1000.0
            self.sink(name, duration_us, end_us)

    def record_between(self, name: str, start_ticks: int,
                       end_ticks: int) -> None:
        """Record a span from two raw tick readings."""
        self.record_value(
            name, self.clock.delta_us(start_ticks, end_ticks),
            end_us=end_ticks * self.clock.period_ns / 1000.0)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def mean_us(self, name: str) -> float:
        """Mean duration of *name* in microseconds (0 if never seen)."""
        stats = self._stats.get(name)
        return stats.mean_us if stats else 0.0

    def total_us(self, name: str) -> float:
        stats = self._stats.get(name)
        return stats.total_us if stats else 0.0

    def count(self, name: str) -> int:
        stats = self._stats.get(name)
        return stats.count if stats else 0

    def stats(self, name: str) -> Optional[SpanStats]:
        return self._stats.get(name)

    def names(self) -> List[str]:
        return sorted(self._stats)

    def raw(self, name: str) -> List[float]:
        """Raw per-occurrence durations (requires ``keep_raw``)."""
        return list(self._raw.get(name, ()))

    def means(self) -> Dict[str, float]:
        """Mapping of every span name to its mean in microseconds."""
        return {name: s.mean_us for name, s in self._stats.items()}

    # ------------------------------------------------------------------
    # Snapshot / merge (multi-run aggregation, warmup bookkeeping)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """All current aggregates as plain JSON-serializable dicts."""
        return {name: s.as_dict() for name, s in self._stats.items()}

    def merge(self, other: Union["SpanTracer", Mapping[str, Mapping]]
              ) -> None:
        """Fold another tracer (or a :meth:`snapshot`) into this one.

        Used to re-combine warmup data captured before a
        :meth:`reset`, and to aggregate several runs into one exportable
        span table.
        """
        if isinstance(other, SpanTracer):
            items = other._stats.items()
        else:
            items = other.items()
        for name, stats in items:
            mine = self._stats.get(name)
            if mine is None:
                mine = self._stats[name] = SpanStats(name)
            mine.merge(stats)

    def reset(self) -> None:
        """Forget all recorded spans (e.g. after a warmup phase).

        Call :meth:`snapshot` first if the data should survive; the
        pipeline :attr:`sink`, if any, is left installed.
        """
        self._stats.clear()
        self._raw.clear()
