"""Exception types for the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with an invalid delay."""


class EventError(SimulationError):
    """An event was used in an invalid way (e.g. triggered twice)."""


class ProcessError(SimulationError):
    """A simulated process misbehaved (e.g. yielded a non-waitable)."""


class Deadlock(SimulationError):
    """``run(until=...)`` could not reach the requested time: the event
    queue drained while simulated processes were still waiting."""
