"""Discrete-event simulation kernel.

The kernel is deliberately small and deterministic:

* Time is an integer number of **nanoseconds** (`Simulator.now`).
* Work is scheduled as callbacks on a binary heap, tie-broken by a
  monotonically increasing sequence number, so two runs of the same model
  produce byte-identical event orderings.
* Concurrency is expressed with generator-based :class:`Process` objects
  (in the style of simpy): a process ``yield``\\ s an :class:`Event` (or a
  plain integer, treated as a timeout in nanoseconds) and is resumed with
  the event's value when it triggers.
* Observability hooks (:class:`repro.obs.hooks.SimHooks`) may be
  installed via :meth:`Simulator.set_hooks`; the default is ``None``
  and every hook site is a single ``is not None`` test, so an
  unobserved run pays nothing and stays byte-identical to the seed.

Everything else in :mod:`repro` — the CPU model, the device models, the
protocol stack — is built on these primitives.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.errors import (
    Deadlock,
    EventError,
    ProcessError,
    SchedulingError,
)

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "ScheduledCall",
    "NS_PER_US",
    "us",
    "to_us",
    "tiebreak_keyfn",
]

#: Nanoseconds per microsecond; the paper reports everything in µs.
NS_PER_US = 1000


def _mix64(seed: int, seq: int) -> int:
    """splitmix64-style integer hash: a deterministic pseudo-random
    permutation of *seq* parameterized by *seed* (no `random` module, so
    the shuffle itself cannot perturb global RNG state)."""
    z = (seed * 0x9E3779B97F4A7C15 + seq * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def tiebreak_keyfn(policy: Optional[str]) -> Optional[Callable[[int], int]]:
    """Resolve a tie-break *policy* to a sequence->sort-key function.

    ``None``/``"fifo"`` return ``None``: the caller should use the raw
    sequence number (insertion order), which is the seed-identical fast
    path.  ``"lifo"`` reverses insertion order among equal-time events;
    ``"shuffle:<seed>"`` applies a seeded deterministic permutation.
    These perturbed orderings are the substrate of the race detector
    (:mod:`repro.analysis.racecheck`): a model whose results change
    under them depends on same-timestamp event ordering.
    """
    if policy is None or policy == "fifo":
        return None
    if policy == "lifo":
        return lambda seq: -seq
    if isinstance(policy, str) and policy.startswith("shuffle:"):
        try:
            seed = int(policy.split(":", 1)[1], 0)
        except ValueError:
            raise SchedulingError(f"bad shuffle seed in {policy!r}")
        return lambda seq: _mix64(seed, seq)
    raise SchedulingError(
        f"unknown tie-break policy {policy!r} "
        "(expected 'fifo', 'lifo' or 'shuffle:<seed>')")


def us(value: float) -> int:
    """Convert a duration in microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


def to_us(ns: int) -> float:
    """Convert integer nanoseconds to microseconds (float)."""
    return ns / NS_PER_US


class ScheduledCall:
    """Handle for a callback sitting in the event queue.

    Cancellation is lazy: the heap entry stays in place and is skipped by
    the main loop once :meth:`cancel` has been called.  This is how the CPU
    model revokes a completion event when a job is preempted.
    """

    __slots__ = ("time", "seq", "key", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable, args: tuple,
                 key: Optional[int] = None):
        self.time = time
        self.seq = seq
        #: Same-timestamp sort key.  Equal to *seq* (insertion order)
        #: under the default FIFO tie-break; a perturbed tie-break
        #: policy (see :func:`tiebreak_keyfn`) substitutes another
        #: deterministic key so the race detector can reorder
        #: logically-concurrent events.
        self.key = seq if key is None else key
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True
        # Drop references eagerly so cancelled chains do not pin memory.
        self.fn = _noop
        self.args = ()

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.key) < (other.time, other.key)


def _noop(*_args: Any) -> None:
    return None


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once, with either a value (:meth:`succeed`) or
    an exception (:meth:`fail`).  Callbacks registered before the trigger
    run at the trigger's simulated time, in registration order; callbacks
    registered after the trigger run immediately (still via the event
    queue, preserving determinism).
    """

    _PENDING = object()

    __slots__ = ("sim", "_callbacks", "_value", "_exc", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._exc: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not Event._PENDING or self._exc is not None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The value the event succeeded with."""
        if not self.triggered:
            raise EventError(f"event {self.name!r} has not been triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        if self.triggered:
            raise EventError(f"event {self.name!r} already triggered")
        self._value = value
        self._schedule_callbacks()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, raised in each waiter."""
        if self.triggered:
            raise EventError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise EventError("fail() requires an exception instance")
        self._exc = exc
        self._schedule_callbacks()
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` once the event triggers."""
        if self._callbacks is None:
            # Already triggered and dispatched: run at the current time.
            self.sim.schedule(0, fn, self)
        else:
            self._callbacks.append(fn)

    def _schedule_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            self.sim.schedule(0, self._dispatch, callbacks)

    def _dispatch(self, callbacks: Iterable[Callable[["Event"], None]]) -> None:
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process(Event):
    """A generator-based simulated process.

    The process *is* an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait on each other
    simply by yielding them.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise ProcessError(
                f"Process requires a generator, got {type(gen).__name__}"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        sim.schedule(0, self._resume, None, None)
        if sim.hooks is not None:
            sim.hooks.on_process_start(sim.now, self)

    @property
    def alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self.triggered

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            self._notify_end()
            return
        except BaseException as error:  # noqa: BLE001 - propagate via event
            self.fail(error)
            self._notify_end()
            return
        try:
            self._wait_on(target)
        except ProcessError as error:
            self._gen.close()
            self.fail(error)
            self._notify_end()

    def _notify_end(self) -> None:
        if self.sim.hooks is not None:
            self.sim.hooks.on_process_end(self.sim.now, self)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, int):
            # Plain integers are timeouts in nanoseconds.
            self.sim.schedule(target, self._resume, None, None)
            return
        if isinstance(target, Event):
            target.add_callback(self._on_event)
            return
        raise ProcessError(
            f"process {self.name!r} yielded non-waitable "
            f"{type(target).__name__}: {target!r}"
        )

    def _on_event(self, event: Event) -> None:
        if event.ok:
            self._resume(event._value, None)
        else:
            self._resume(None, event._exc)


class Simulator:
    """The event loop: a clock plus a heap of scheduled callbacks."""

    def __init__(self, hooks: Optional[Any] = None,
                 tiebreak: Optional[str] = None) -> None:
        self._now = 0
        self._queue: List[ScheduledCall] = []
        self._seq = itertools.count()
        self._events_executed = 0
        #: Observability hooks (repro.obs.hooks.SimHooks) or None.
        #: Read directly by the CPU model; install via set_hooks().
        self.hooks: Optional[Any] = None
        #: Same-timestamp tie-break policy ('fifo' when None); see
        #: :func:`tiebreak_keyfn`.  Only the race detector passes a
        #: non-default value.
        self.tiebreak = tiebreak or "fifo"
        self._keyfn = tiebreak_keyfn(tiebreak)
        if hooks is not None:
            self.set_hooks(hooks)

    def set_hooks(self, hooks: Optional[Any]) -> None:
        """Install observability hooks (``None`` disables them).

        A :class:`repro.obs.hooks.NoopHooks` instance is normalized to
        ``None`` so the "explicitly unobserved" configuration keeps the
        zero-overhead unhooked fast path.
        """
        from repro.obs.hooks import NoopHooks, SimHooks

        if hooks is not None and not isinstance(hooks, SimHooks):
            raise SchedulingError(
                f"hooks must be a SimHooks, got {type(hooks).__name__}")
        if isinstance(hooks, NoopHooks):
            hooks = None
        self.hooks = hooks

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return to_us(self._now)

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._events_executed

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after *delay_ns* nanoseconds."""
        if delay_ns < 0:
            raise SchedulingError(f"negative delay: {delay_ns}")
        seq = next(self._seq)
        key = seq if self._keyfn is None else self._keyfn(seq)
        call = ScheduledCall(self._now + int(delay_ns), seq, fn, args, key)
        heapq.heappush(self._queue, call)
        if self.hooks is not None:
            self.hooks.on_schedule(self._now, call)
        return call

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay_ns: int, value: Any = None) -> Event:
        """An event that succeeds with *value* after *delay_ns*."""
        ev = Event(self, name=f"timeout({delay_ns})")
        self.schedule(delay_ns, self._trigger_timeout, ev, value)
        return ev

    @staticmethod
    def _trigger_timeout(ev: Event, value: Any) -> None:
        ev.succeed(value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds once every event in *events* has.

        Succeeds with the list of individual values, in input order.
        """
        events = list(events)
        done = Event(self, name="all_of")
        if not events:
            done.succeed([])
            return done
        remaining = [len(events)]
        values: List[Any] = [None] * len(events)

        def make_cb(index: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                if done.triggered:
                    return
                if not ev.ok:
                    done.fail(ev._exc)  # noqa: SLF001 - kernel internal
                    return
                values[index] = ev._value  # noqa: SLF001
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds as soon as any event in *events* does.

        Succeeds with ``(index, value)`` of the first event to trigger.
        """
        events = list(events)
        done = Event(self, name="any_of")
        if not events:
            raise EventError("any_of() requires at least one event")

        def make_cb(index: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                if done.triggered:
                    return
                if not ev.ok:
                    done.fail(ev._exc)  # noqa: SLF001
                    return
                done.succeed((index, ev._value))  # noqa: SLF001

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled callback.  Returns False when
        the queue is empty."""
        while self._queue:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            if call.time < self._now:
                raise SchedulingError("event queue went backwards in time")
            self._now = call.time
            self._events_executed += 1
            if self.hooks is not None:
                self.hooks.on_dispatch(self._now, call)
            call.fn(*call.args)
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run the event loop.

        With *until* (nanoseconds), stop once the clock reaches it (or the
        queue drains, whichever comes first) and advance the clock to
        *until*.  Without it, run until the queue is empty.
        """
        if until is None:
            while self.step():
                pass
            return
        if until < self._now:
            raise SchedulingError(f"until={until} is in the past")
        while self._queue:
            if self._peek_time() > until:
                break
            self.step()
        self._now = until

    def run_until_triggered(self, event: Event) -> Any:
        """Run until *event* triggers; return its value."""
        while not event.triggered:
            if not self.step():
                raise Deadlock(
                    f"event queue drained; {event!r} never triggered"
                )
        return event.value

    def _peek_time(self) -> int:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return self._now
        return self._queue[0].time
