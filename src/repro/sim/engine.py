"""Discrete-event simulation kernel.

The kernel is deliberately small and deterministic:

* Time is an integer number of **nanoseconds** (`Simulator.now`).
* Work is scheduled as callbacks on a binary heap, tie-broken by a
  monotonically increasing sequence number, so two runs of the same model
  produce byte-identical event orderings.
* Concurrency is expressed with generator-based :class:`Process` objects
  (in the style of simpy): a process ``yield``\\ s an :class:`Event` (or a
  plain integer, treated as a timeout in nanoseconds) and is resumed with
  the event's value when it triggers.
* Observability hooks (:class:`repro.obs.hooks.SimHooks`) may be
  installed via :meth:`Simulator.set_hooks`; the default is ``None``
  and every hook site is a single ``is not None`` test, so an
  unobserved run pays nothing and stays byte-identical to the seed.

Performance notes (the ``repro.perf`` hot path):

* Heap entries are ``(time, key, call)`` tuples, so every sift
  comparison during push/pop is a C-level integer compare —
  :class:`ScheduledCall` objects are never compared by the heap.
* The dispatch loops in :meth:`Simulator.run` and
  :meth:`Simulator.run_until_triggered` are inlined with hot names
  bound to locals, and split into a hooks-off fast variant so the
  unobserved run does not re-test ``self.hooks`` against every hook
  site of :meth:`Simulator.step`.
* Dispatched :class:`ScheduledCall` handles are recycled on a
  per-simulator free list.  A handle is only pooled when the dispatch
  loop holds the *sole* remaining reference (checked with
  ``sys.getrefcount``), so a caller that kept the handle — a TCP
  retransmit timer, the CPU model's completion — can never observe
  its object being reused, and a stale ``cancel()`` can never hit a
  recycled entry.
* Lazily-cancelled entries are skipped at a single point, and the heap
  is compacted in place once cancelled entries outnumber live ones
  (the CPU model's preemption leaves dead completions far in the
  future; TCP cancels retransmit/delayed-ack timers constantly).

Everything else in :mod:`repro` — the CPU model, the device models, the
protocol stack — is built on these primitives.
"""

from __future__ import annotations

import heapq
from sys import getrefcount as _refcount
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.errors import (
    Deadlock,
    EventError,
    ProcessError,
    SchedulingError,
)

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "ScheduledCall",
    "NS_PER_US",
    "us",
    "to_us",
    "tiebreak_keyfn",
]

#: Nanoseconds per microsecond; the paper reports everything in µs.
NS_PER_US = 1000

#: Upper bound on pooled ScheduledCall handles per simulator.
_POOL_MAX = 1024

#: Cancelled-entry compaction is considered every this-many schedules.
_COMPACT_MASK = 0xFFF

#: Heaps smaller than this are never compacted (not worth the scan).
_COMPACT_MIN = 64


def _mix64(seed: int, seq: int) -> int:
    """splitmix64-style integer hash: a deterministic pseudo-random
    permutation of *seq* parameterized by *seed* (no `random` module, so
    the shuffle itself cannot perturb global RNG state)."""
    z = (seed * 0x9E3779B97F4A7C15 + seq * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def tiebreak_keyfn(policy: Optional[str]) -> Optional[Callable[[int], int]]:
    """Resolve a tie-break *policy* to a sequence->sort-key function.

    ``None``/``"fifo"`` return ``None``: the caller should use the raw
    sequence number (insertion order), which is the seed-identical fast
    path.  ``"lifo"`` reverses insertion order among equal-time events;
    ``"shuffle:<seed>"`` applies a seeded deterministic permutation.
    These perturbed orderings are the substrate of the race detector
    (:mod:`repro.analysis.racecheck`): a model whose results change
    under them depends on same-timestamp event ordering.
    """
    if policy is None or policy == "fifo":
        return None
    if policy == "lifo":
        return lambda seq: -seq
    if isinstance(policy, str) and policy.startswith("shuffle:"):
        try:
            seed = int(policy.split(":", 1)[1], 0)
        except ValueError:
            raise SchedulingError(f"bad shuffle seed in {policy!r}")
        return lambda seq: _mix64(seed, seq)
    raise SchedulingError(
        f"unknown tie-break policy {policy!r} "
        "(expected 'fifo', 'lifo' or 'shuffle:<seed>')")


def us(value: float) -> int:
    """Convert a duration in microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


def to_us(ns: int) -> float:
    """Convert integer nanoseconds to microseconds (float)."""
    return ns / NS_PER_US


class ScheduledCall:
    """Handle for a callback sitting in the event queue.

    Cancellation is lazy: the heap entry stays in place and is skipped by
    the main loop once :meth:`cancel` has been called.  This is how the CPU
    model revokes a completion event when a job is preempted.
    """

    __slots__ = ("time", "seq", "key", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable, args: tuple,
                 key: Optional[int] = None):
        self.time = time
        self.seq = seq
        #: Same-timestamp sort key.  Equal to *seq* (insertion order)
        #: under the default FIFO tie-break; a perturbed tie-break
        #: policy (see :func:`tiebreak_keyfn`) substitutes another
        #: deterministic key so the race detector can reorder
        #: logically-concurrent events.
        self.key = seq if key is None else key
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True
        # Drop references eagerly so cancelled chains do not pin memory.
        self.fn = _noop
        self.args = ()

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.key) < (other.time, other.key)


def _noop(*_args: Any) -> None:
    return None


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once, with either a value (:meth:`succeed`) or
    an exception (:meth:`fail`).  Callbacks registered before the trigger
    run at the trigger's simulated time, in registration order; callbacks
    registered after the trigger run immediately (still via the event
    queue, preserving determinism).
    """

    _PENDING = object()

    __slots__ = ("sim", "_callbacks", "_value", "_exc", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._exc: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not Event._PENDING or self._exc is not None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The value the event succeeded with."""
        if not self.triggered:
            raise EventError(f"event {self.name!r} has not been triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        if self.triggered:
            raise EventError(f"event {self.name!r} already triggered")
        self._value = value
        self._schedule_callbacks()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, raised in each waiter."""
        if self.triggered:
            raise EventError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise EventError("fail() requires an exception instance")
        self._exc = exc
        self._schedule_callbacks()
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` once the event triggers."""
        if self._callbacks is None:
            # Already triggered and dispatched: run at the current time.
            self.sim.schedule(0, fn, self)
        else:
            self._callbacks.append(fn)

    def _schedule_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            if len(callbacks) == 1:
                # Single waiter (the overwhelmingly common case): skip
                # the _dispatch wrapper frame.  Same queue position,
                # same dispatch time and order.
                self.sim.schedule(0, callbacks[0], self)
            else:
                self.sim.schedule(0, self._dispatch, callbacks)

    def _dispatch(self, callbacks: Iterable[Callable[["Event"], None]]) -> None:
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process(Event):
    """A generator-based simulated process.

    The process *is* an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait on each other
    simply by yielding them.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise ProcessError(
                f"Process requires a generator, got {type(gen).__name__}"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        sim.schedule(0, self._resume, None, None)
        if sim.hooks is not None:
            sim.hooks.on_process_start(sim.now, self)

    @property
    def alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self.triggered

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            self._notify_end()
            return
        except BaseException as error:  # noqa: BLE001 - propagate via event
            self.fail(error)
            self._notify_end()
            return
        try:
            self._wait_on(target)
        except ProcessError as error:
            self._gen.close()
            self.fail(error)
            self._notify_end()

    def _notify_end(self) -> None:
        if self.sim.hooks is not None:
            self.sim.hooks.on_process_end(self.sim.now, self)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, int):
            # Plain integers are timeouts in nanoseconds.
            self.sim.schedule(target, self._resume, None, None)
            return
        if isinstance(target, Event):
            target.add_callback(self._on_event)
            return
        raise ProcessError(
            f"process {self.name!r} yielded non-waitable "
            f"{type(target).__name__}: {target!r}"
        )

    def _on_event(self, event: Event) -> None:
        if event.ok:
            self._resume(event._value, None)
        else:
            self._resume(None, event._exc)


class Simulator:
    """The event loop: a clock plus a heap of scheduled callbacks."""

    def __init__(self, hooks: Optional[Any] = None,
                 tiebreak: Optional[str] = None) -> None:
        self._now = 0
        #: Heap of ``(time, key, ScheduledCall)``: comparisons stay on
        #: the integer prefix (keys are unique per simulator), so the
        #: heap never falls back to comparing ScheduledCall objects.
        self._queue: List[tuple] = []
        self._seq_next = 0
        self._events_executed = 0
        #: Recycled ScheduledCall handles (see module docstring).
        self._pool: List[ScheduledCall] = []
        #: Observability hooks (repro.obs.hooks.SimHooks) or None.
        #: Read directly by the CPU model; install via set_hooks().
        self.hooks: Optional[Any] = None
        #: Same-timestamp tie-break policy ('fifo' when None); see
        #: :func:`tiebreak_keyfn`.  Only the race detector passes a
        #: non-default value.
        self.tiebreak = tiebreak or "fifo"
        self._keyfn = tiebreak_keyfn(tiebreak)
        if hooks is not None:
            self.set_hooks(hooks)

    def set_hooks(self, hooks: Optional[Any]) -> None:
        """Install observability hooks (``None`` disables them).

        A :class:`repro.obs.hooks.NoopHooks` instance is normalized to
        ``None`` so the "explicitly unobserved" configuration keeps the
        zero-overhead unhooked fast path.
        """
        from repro.obs.hooks import NoopHooks, SimHooks

        if hooks is not None and not isinstance(hooks, SimHooks):
            raise SchedulingError(
                f"hooks must be a SimHooks, got {type(hooks).__name__}")
        if isinstance(hooks, NoopHooks):
            hooks = None
        self.hooks = hooks

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return to_us(self._now)

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._events_executed

    @property
    def pooled_calls(self) -> int:
        """ScheduledCall handles currently on the free list (diagnostics)."""
        return len(self._pool)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, fn: Callable, *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after *delay_ns* nanoseconds."""
        if delay_ns < 0:
            raise SchedulingError(f"negative delay: {delay_ns}")
        seq = self._seq_next
        self._seq_next = seq + 1
        key = seq if self._keyfn is None else self._keyfn(seq)
        time = self._now + int(delay_ns)
        pool = self._pool
        if pool:
            call = pool.pop()
            call.time = time
            call.seq = seq
            call.key = key
            call.fn = fn
            call.args = args
            call.cancelled = False
        else:
            call = ScheduledCall(time, seq, fn, args, key)
        heapq.heappush(self._queue, (time, key, call))
        if not (seq & _COMPACT_MASK):
            self._maybe_compact()
        if self.hooks is not None:
            self.hooks.on_schedule(self._now, call)
        return call

    def reschedule(self, call: ScheduledCall, delay_ns: int) -> ScheduledCall:
        """Move a **pending** *call* to fire after *delay_ns* instead.

        The dominant timer pattern — cancel + re-schedule of the same
        callback on every ACK — leaves a cancelled tombstone in the heap
        per cycle.  When the new time is not earlier than the call's
        current one (the common case: pushing a deadline out), this
        defers in place: ``call.time`` is updated and the stale heap
        entry is re-keyed lazily when it surfaces at a pop, so no
        tombstone is ever created.  An earlier target falls back to
        cancel + fresh schedule (returning the new handle).

        The deferred call keeps its original tie-break key, so among
        same-time events it sorts where its *first* scheduling did —
        which is why the default TCP timer path does not use this (the
        goldens pin cancel+schedule ordering).  Only valid on a call
        that has neither fired nor been cancelled, like BSD's
        ``untimeout``/``timeout`` pairing.
        """
        if delay_ns < 0:
            raise SchedulingError(f"negative delay: {delay_ns}")
        if call.cancelled:
            raise SchedulingError("reschedule() on a cancelled call")
        new_time = self._now + int(delay_ns)
        if new_time >= call.time:
            call.time = new_time
            if self.hooks is not None:
                self.hooks.on_schedule(self._now, call)
            return call
        fn, args = call.fn, call.args
        call.cancel()
        return self.schedule(delay_ns, fn, *args)

    def _maybe_compact(self) -> None:
        """Drop lazily-cancelled heap entries once they are the majority.

        Rebuilds **in place** (slice assignment + heapify) because the
        dispatch loops hold a direct reference to the heap list.
        """
        queue = self._queue
        if len(queue) < _COMPACT_MIN:
            return
        live = [entry for entry in queue if not entry[2].cancelled]
        if len(live) * 2 <= len(queue):
            queue[:] = live
            heapq.heapify(queue)

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay_ns: int, value: Any = None) -> Event:
        """An event that succeeds with *value* after *delay_ns*.

        Fast path: waiters registered before the deadline are invoked
        directly from the timeout's own dispatch slot — same simulated
        time, same registration order — instead of hopping through a
        second delay-0 event (``succeed`` → ``_dispatch``).  A process
        yielding a timeout therefore resumes one queue operation
        earlier; callbacks added *after* the trigger still go through
        :meth:`Event.add_callback`'s scheduled path.
        """
        ev = Event(self, name="timeout")
        self.schedule(delay_ns, self._trigger_timeout, ev, value)
        return ev

    @staticmethod
    def _trigger_timeout(ev: Event, value: Any) -> None:
        if ev._value is not Event._PENDING or ev._exc is not None:
            raise EventError(f"event {ev.name!r} already triggered")
        ev._value = value
        callbacks, ev._callbacks = ev._callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(ev)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds once every event in *events* has.

        Succeeds with the list of individual values, in input order.
        """
        events = list(events)
        done = Event(self, name="all_of")
        if not events:
            done.succeed([])
            return done
        remaining = [len(events)]
        values: List[Any] = [None] * len(events)

        def make_cb(index: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                if done.triggered:
                    return
                if not ev.ok:
                    done.fail(ev._exc)  # noqa: SLF001 - kernel internal
                    return
                values[index] = ev._value  # noqa: SLF001
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds as soon as any event in *events* does.

        Succeeds with ``(index, value)`` of the first event to trigger.
        """
        events = list(events)
        done = Event(self, name="any_of")
        if not events:
            raise EventError("any_of() requires at least one event")

        def make_cb(index: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                if done.triggered:
                    return
                if not ev.ok:
                    done.fail(ev._exc)  # noqa: SLF001
                    return
                done.succeed((index, ev._value))  # noqa: SLF001

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled callback.  Returns False when
        the queue is empty.

        This is the single cancelled-entry skip point: ``run(until)``
        peeks through the same logic instead of re-scanning (the seed
        popped cancelled heads in ``_peek_time`` *and* re-checked
        ``cancelled`` here on every iteration).
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _key, call = pop(queue)
            if call.cancelled:
                if _refcount(call) == 2 and len(self._pool) < _POOL_MAX:
                    call.fn = _noop
                    call.args = ()
                    self._pool.append(call)
                continue
            if call.time != time:
                # Deferred by reschedule(): re-key to the new time.
                heapq.heappush(queue, (call.time, call.key, call))
                continue
            if time < self._now:
                raise SchedulingError("event queue went backwards in time")
            self._now = time
            self._events_executed += 1
            if self.hooks is not None:
                self.hooks.on_dispatch(time, call)
            call.fn(*call.args)
            # Recycle the handle if the loop holds the only reference
            # left (callers that kept it — timers, CPU completions —
            # keep their object untouched; see module docstring).
            if _refcount(call) == 2 and len(self._pool) < _POOL_MAX:
                call.fn = _noop
                call.args = ()
                self._pool.append(call)
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run the event loop.

        With *until* (nanoseconds), stop once the clock reaches it (or the
        queue drains, whichever comes first) and advance the clock to
        *until*.  Without it, run until the queue is empty.
        """
        if until is None:
            self._run_all()
            return
        if until < self._now:
            raise SchedulingError(f"until={until} is in the past")
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        pool = self._pool
        executed = 0
        try:
            while queue:
                entry = queue[0]
                call = entry[2]
                if call.cancelled:
                    pop(queue)
                    if _refcount(call) == 2 and len(pool) < _POOL_MAX:
                        call.fn = _noop
                        call.args = ()
                        pool.append(call)
                    continue
                time = entry[0]
                if call.time != time:
                    # Deferred by reschedule(): re-key to the new time.
                    pop(queue)
                    push(queue, (call.time, call.key, call))
                    continue
                if time > until:
                    break
                pop(queue)
                if time < self._now:
                    raise SchedulingError(
                        "event queue went backwards in time")
                self._now = time
                executed += 1
                hooks = self.hooks
                if hooks is not None:
                    hooks.on_dispatch(time, call)
                call.fn(*call.args)
                if _refcount(call) == 2 and len(pool) < _POOL_MAX:
                    call.fn = _noop
                    call.args = ()
                    pool.append(call)
        finally:
            self._events_executed += executed
        self._now = until

    def _run_all(self) -> None:
        """Drain the queue (``run()`` with no deadline), hooks-off fast
        loop with a hooks-aware fallback."""
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        pool = self._pool
        executed = 0
        try:
            while queue:
                if self.hooks is not None:
                    # Hooks installed (possibly mid-run): take the
                    # fully-guarded path for the remaining events.
                    self._events_executed += executed
                    executed = 0
                    while self.step():
                        pass
                    return
                time, _key, call = pop(queue)
                if call.cancelled:
                    if _refcount(call) == 2 and len(pool) < _POOL_MAX:
                        call.fn = _noop
                        call.args = ()
                        pool.append(call)
                    continue
                if call.time != time:
                    # Deferred by reschedule(): re-key to the new time.
                    push(queue, (call.time, call.key, call))
                    continue
                if time < self._now:
                    raise SchedulingError(
                        "event queue went backwards in time")
                self._now = time
                executed += 1
                call.fn(*call.args)
                if _refcount(call) == 2 and len(pool) < _POOL_MAX:
                    call.fn = _noop
                    call.args = ()
                    pool.append(call)
        finally:
            self._events_executed += executed

    def run_until_triggered(self, event: Event) -> Any:
        """Run until *event* triggers; return its value."""
        pending = Event._PENDING
        if self.hooks is not None:
            while event._value is pending and event._exc is None:
                if not self.step():
                    raise Deadlock(
                        f"event queue drained; {event!r} never triggered"
                    )
            return event.value
        # Hooks-off fast loop: inlined dispatch, hot names in locals.
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        pool = self._pool
        executed = 0
        try:
            while event._value is pending and event._exc is None:
                if self.hooks is not None:
                    # Installed mid-run: fall back to the guarded path.
                    self._events_executed += executed
                    executed = 0
                    if not self.step():
                        raise Deadlock(
                            f"event queue drained; {event!r} never "
                            f"triggered")
                    continue
                while True:
                    if not queue:
                        raise Deadlock(
                            f"event queue drained; {event!r} never "
                            f"triggered")
                    time, _key, call = pop(queue)
                    if not call.cancelled:
                        if call.time == time:
                            break
                        # Deferred by reschedule(): re-key and rescan.
                        push(queue, (call.time, call.key, call))
                        continue
                    if _refcount(call) == 2 and len(pool) < _POOL_MAX:
                        call.fn = _noop
                        call.args = ()
                        pool.append(call)
                if time < self._now:
                    raise SchedulingError(
                        "event queue went backwards in time")
                self._now = time
                executed += 1
                call.fn(*call.args)
                if _refcount(call) == 2 and len(pool) < _POOL_MAX:
                    call.fn = _noop
                    call.args = ()
                    pool.append(call)
        finally:
            self._events_executed += executed
        return event.value

    def _peek_time(self) -> int:
        """Earliest live event time (compat helper; the run loops now
        peek inline through :meth:`step`'s single skip point)."""
        queue = self._queue
        while queue:
            entry = queue[0]
            call = entry[2]
            if call.cancelled:
                heapq.heappop(queue)
                continue
            if call.time != entry[0]:
                # Deferred by reschedule(): re-key to the new time.
                heapq.heappop(queue)
                heapq.heappush(queue, (call.time, call.key, call))
                continue
            return entry[0]
        return self._now


# ----------------------------------------------------------------------
# Optional compiled engine core (repro._native._corec)
# ----------------------------------------------------------------------
# Selected once at import time via repro.perf.native (REPRO_NATIVE=0|1).
# The native Simulator subclasses the pure one — every non-hot method
# (events, processes, timeouts, hook validation) is inherited — and
# delegates the clock, heap, free list and dispatch loops to an
# EngineCore whose semantics are byte-identical (same event order, same
# pooling refcount discipline, same compaction cadence, same error
# classes and messages).  tests/perf_golden/ gates the equivalence.

import repro.perf.native as _native_dispatch

_CORE = _native_dispatch.lib

if _CORE is not None:
    _CORE.engine_install(Event._PENDING, SchedulingError, Deadlock, _noop)

    _PurePythonSimulator = Simulator

    class _NativeSimulator(_PurePythonSimulator):
        """Simulator backed by the compiled EngineCore."""

        def __init__(self, hooks: Optional[Any] = None,
                     tiebreak: Optional[str] = None) -> None:
            self.tiebreak = tiebreak or "fifo"
            self._keyfn = tiebreak_keyfn(tiebreak)
            core = _CORE.EngineCore(self._keyfn)
            self._core = core
            #: Bound C methods in the instance dict: callers resolve
            #: `sim.schedule`/`sim.reschedule` straight to the compiled
            #: entry points.
            self.schedule = core.schedule
            self.reschedule = core.reschedule
            if hooks is not None:
                self.set_hooks(hooks)

        # -- state lives in the core ----------------------------------
        @property
        def hooks(self) -> Optional[Any]:
            return self._core.hooks

        @hooks.setter
        def hooks(self, value: Optional[Any]) -> None:
            self._core.hooks = value

        @property
        def now(self) -> int:
            return self._core.now

        @property
        def now_us(self) -> float:
            return to_us(self._core.now)

        @property
        def events_executed(self) -> int:
            return self._core.events_executed

        @property
        def pooled_calls(self) -> int:
            return self._core.pooled_calls

        @property
        def _now(self) -> int:
            return self._core.now

        @property
        def _queue(self) -> List[tuple]:
            return self._core.queue

        @property
        def _pool(self) -> List[Any]:
            return self._core.pool

        # -- hot loops ------------------------------------------------
        def step(self) -> bool:
            return self._core.step()

        def run(self, until: Optional[int] = None) -> None:
            if until is None:
                self._core.run_all()
            else:
                self._core.run_until(until)

        def run_until_triggered(self, event: Event) -> Any:
            self._core.run_until_triggered(event)
            return event.value

        def _maybe_compact(self) -> None:
            self._core.maybe_compact()

        def _peek_time(self) -> int:
            return self._core.peek_time()

    Simulator = _NativeSimulator  # type: ignore[misc]
