"""Seeded deterministic random streams for fault/impairment models.

Every stochastic model in the repo — the §4.2 fault injector, the
chaos impairment layer — draws from a :class:`SplitMix64Stream` built
on the same splitmix64-style integer hash the simulator's tie-break
shuffle uses (:func:`repro.sim.engine.tiebreak_keyfn`).  One
convention, three properties:

* **seeded**: a stream is fully determined by its integer seed (plus
  an optional label), so two runs with the same seed draw identical
  sequences and the determinism linter's unseeded-random rule has
  nothing to flag;
* **forkable**: :meth:`fork` derives an independent child stream from
  a label, so per-endpoint consumers (client wire vs server wire)
  cannot perturb each other's sequences no matter how their draws
  interleave in simulated time;
* **indexed**: the nth draw is ``mix64(seed, n)`` — a pure function of
  the seed and the draw counter, with no hidden global state (unlike
  ``random.Random``'s 2496-bit Mersenne state).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.sim.engine import _mix64

__all__ = ["SplitMix64Stream"]

T = TypeVar("T")

_U64 = 0xFFFFFFFFFFFFFFFF
#: 1/2**64 — maps a u64 draw onto [0, 1).
_INV_2_64 = 1.0 / float(1 << 64)


class SplitMix64Stream:
    """A deterministic stream of pseudo-random draws.

    The API deliberately mirrors the small subset of ``random.Random``
    the repo's stochastic models use (``random``, ``randrange``,
    ``choice``) so swapping it in is mechanical.
    """

    __slots__ = ("seed", "label", "_index")

    def __init__(self, seed: int, label: str = ""):
        base = seed & _U64
        for ch in label:
            base = _mix64(base, ord(ch))
        self.seed = base
        self.label = label
        self._index = 0

    @property
    def draws(self) -> int:
        """Number of values drawn so far (diagnostics)."""
        return self._index

    def fork(self, label: str) -> "SplitMix64Stream":
        """An independent child stream derived from *label*.

        Forking does not consume a draw from this stream, and children
        with distinct labels are independent of each other and of the
        parent.
        """
        return SplitMix64Stream(_mix64(self.seed, 0xF0 + len(label)),
                                label=label)

    # ------------------------------------------------------------------
    # Draws
    # ------------------------------------------------------------------
    def next_u64(self) -> int:
        """The next raw 64-bit draw."""
        index = self._index
        self._index = index + 1
        return _mix64(self.seed, index)

    def random(self) -> float:
        """A float in [0, 1), like ``random.Random.random``."""
        return self.next_u64() * _INV_2_64

    def randrange(self, n: int) -> int:
        """An integer in [0, n), like ``random.Random.randrange``."""
        if n <= 0:
            raise ValueError(f"randrange() arg must be positive, got {n}")
        # Modulo bias is ~n/2**64: irrelevant for the small ranges the
        # fault models use (bit positions, cell indices).
        return self.next_u64() % n

    def choice(self, seq: Sequence[T]) -> T:
        """A uniformly chosen element of *seq*."""
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def __repr__(self) -> str:
        return (f"<SplitMix64Stream seed={self.seed:#018x} "
                f"label={self.label!r} draws={self._index}>")
