"""Model of the measurement clock.

The paper reads a free-running real-time clock with a 40 ns period on a
TurboChannel card (the clock from the DEC SRC AN-1 controller).  All of
the paper's latency spans are differences of reads of this clock, so we
reproduce the same quantization: reads return whole ticks.
"""

from __future__ import annotations

from repro.sim.engine import Simulator

__all__ = ["ClockCard", "AN1_PERIOD_NS"]

#: The AN-1 controller clock period used in the paper — a structural
#: hardware property of the measurement instrument (its quantization),
#: not a calibrated cycle cost, so it lives with the clock model.
AN1_PERIOD_NS = 40  # repro: allow(magic-cost)


class ClockCard:
    """A memory-mapped free-running counter with a fixed tick period.

    ``read_ticks`` is what the instrumented kernel/user code "dereferences";
    ``read_ns`` converts back to nanoseconds (still quantized to the tick).
    """

    def __init__(self, sim: Simulator, period_ns: int = AN1_PERIOD_NS):
        if period_ns <= 0:
            raise ValueError("clock period must be positive")
        self.sim = sim
        self.period_ns = period_ns

    def read_ticks(self) -> int:
        """Current counter value (number of whole periods since boot)."""
        return self.sim.now // self.period_ns

    def read_ns(self) -> int:
        """Current time quantized down to the clock period."""
        return self.read_ticks() * self.period_ns

    def read_us(self) -> float:
        """Current quantized time in microseconds."""
        return self.read_ns() / 1000.0

    def delta_us(self, start_ticks: int, end_ticks: int) -> float:
        """Elapsed microseconds between two tick readings."""
        return (end_ticks - start_ticks) * self.period_ns / 1000.0
