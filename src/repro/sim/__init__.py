"""Discrete-event simulation kernel: engine, CPU, clocks, tracing."""

from repro.sim.clock import AN1_PERIOD_NS, ClockCard
from repro.sim.cpu import CPU, Job, Priority
from repro.sim.engine import (
    NS_PER_US,
    Event,
    Process,
    ScheduledCall,
    Simulator,
    to_us,
    us,
)
from repro.sim.errors import (
    Deadlock,
    EventError,
    ProcessError,
    SchedulingError,
    SimulationError,
)
from repro.sim.resources import Semaphore, Signal, Store
from repro.sim.trace import SpanStats, SpanTracer

__all__ = [
    "AN1_PERIOD_NS",
    "CPU",
    "ClockCard",
    "Deadlock",
    "Event",
    "EventError",
    "Job",
    "NS_PER_US",
    "Priority",
    "Process",
    "ProcessError",
    "ScheduledCall",
    "SchedulingError",
    "Semaphore",
    "Signal",
    "SimulationError",
    "Simulator",
    "SpanStats",
    "SpanTracer",
    "Store",
    "to_us",
    "us",
]
