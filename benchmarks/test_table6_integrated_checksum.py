"""Table 6: round-trip latency with the combined copy+checksum kernel.

The paper's kernel integrates the checksum with the user->kernel copy on
transmit (partial sums stored in mbuf headers) and with the device->
kernel copy on receive.  Reproduction criteria: the integrated kernel
*loses* at small sizes, *wins* at large sizes (~24% at 8000 bytes), and
the break-even point falls between 500 and 1400 bytes — the paper's
headline crossover.
"""

from conftest import once, run_sweep

from repro.core import paperdata
from repro.core.report import format_table, pct_change
from repro.kern.config import ChecksumMode, KernelConfig


def test_table6(benchmark, atm_baseline):
    integrated = once(benchmark, lambda: run_sweep(
        config=KernelConfig(checksum_mode=ChecksumMode.INTEGRATED)))

    rows = []
    savings = {}
    for size in paperdata.SIZES:
        std = atm_baseline[size].mean_rtt_us
        integ = integrated[size].mean_rtt_us
        savings[size] = pct_change(std, integ)
        rows.append((size, round(std), round(integ),
                     paperdata.TABLE6_INTEGRATED[size],
                     round(savings[size], 1),
                     paperdata.TABLE6_SAVING_PCT[size]))
    print()
    print(format_table(
        "Table 6: standard vs combined copy+checksum round trips (us)",
        ("size", "standard", "combined", "(paper)", "sav%", "(paper)"),
        rows, width=10))

    # Loses at small sizes (negative saving), by roughly -22%..-12%.
    for size in (4, 20, 80, 200):
        assert savings[size] < -5, f"{size}B should get worse"
    # Wins at large sizes.
    for size in (1400, 4000, 8000):
        assert savings[size] > 5, f"{size}B should improve"
    # Paper: 24% improvement at 8000 bytes.
    assert abs(savings[8000] - paperdata.TABLE6_SAVING_PCT[8000]) <= 7
    # Break-even between 500 and 1400 bytes.
    assert savings[500] < 5
    assert savings[1400] > 0
    # Absolute values within 15%.
    for size in paperdata.SIZES:
        assert abs(integrated[size].mean_rtt_us
                   / paperdata.TABLE6_INTEGRATED[size] - 1) <= 0.15


def test_partial_checksums_cover_page_aligned_segments(benchmark):
    result = once(benchmark, lambda: run_sweep(
        sizes=[8000],
        config=KernelConfig(checksum_mode=ChecksumMode.INTEGRATED)))
    stats = result[8000].client_stats
    # The socket layer's 4 KB chunks line up with the page-sized MSS, so
    # TCP combines stored partials instead of re-checksumming.
    assert stats["partial_cksum_hits"] > 0
    assert stats["partial_cksum_misses"] == 0
