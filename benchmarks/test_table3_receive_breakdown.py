"""Table 3: breakdown of BSD 4.4 alpha receive-side latency.

Regenerates the per-layer receive spans (ATM, IPQ, IP, TCP checksum/
segment, Wakeup, User).  Sizes up to 4000 bytes are single-segment and
compare row-by-row; the 8000-byte transfer is two segments whose
attribution differs from the paper's last-segment methodology (see
EXPERIMENTS.md), so only shape properties are asserted there.
"""

from conftest import once

from repro.core import paperdata
from repro.core.breakdown import measure_breakdowns
from repro.core.report import format_table

SINGLE_SEGMENT_SIZES = [4, 20, 80, 200, 500, 1400, 4000]

TOLERANCE = {"atm": 0.25, "ipq": 0.25, "ip": 0.35, "checksum": 0.12,
             "segment": 0.20, "wakeup": 0.26, "user": 0.35, "total": 0.20}

ROWS = ("atm", "ipq", "ip", "checksum", "segment", "wakeup", "user",
        "total")


def test_table3(benchmark):
    _, rx_rows = once(benchmark, measure_breakdowns)

    print()
    table_rows = []
    for rx in rx_rows:
        paper = dict(zip(paperdata.TABLE3_ROWS,
                         paperdata.TABLE3_RECEIVE[rx.size]))
        for row in ROWS:
            table_rows.append((rx.size, row, round(rx.row(row), 1),
                               paper[row]))
    print(format_table("Table 3: receive-side breakdown (us)",
                       ("size", "layer", "sim", "paper"), table_rows,
                       width=10))

    for rx in rx_rows:
        if rx.size not in SINGLE_SEGMENT_SIZES:
            continue
        paper = dict(zip(paperdata.TABLE3_ROWS,
                         paperdata.TABLE3_RECEIVE[rx.size]))
        for row in ("atm", "ipq", "checksum", "segment", "wakeup",
                    "total"):
            if row == "ipq" and rx.size >= 1400:
                # The paper's IPQ roughly doubles at >=1400 bytes, an
                # artifact its text does not explain; our dispatch
                # latency stays flat (see EXPERIMENTS.md).
                continue
            sim = rx.row(row)
            assert abs(sim / paper[row] - 1) <= TOLERANCE[row], (
                f"{rx.size}B {row}: sim {sim:.1f} vs paper {paper[row]}")


def test_table3_atm_drain_dominates_large_receives(benchmark):
    _, rx_rows = once(benchmark, lambda: measure_breakdowns(
        sizes=[1400, 4000]))
    for rx in rx_rows:
        # The uncached per-cell FIFO drain is the largest receive cost.
        assert rx.atm > rx.checksum
        assert rx.atm > rx.segment + rx.ip + rx.ipq


def test_table3_scheduling_share_small_transfers(benchmark):
    """§2.2.4: IPQ+Wakeup ≈ 68 µs, ~6.7% of the 4-byte round trip."""
    _, rx_rows = once(benchmark, lambda: measure_breakdowns(sizes=[4]))
    rx = rx_rows[0]
    sched = rx.ipq + rx.wakeup
    assert 50 <= sched <= 85
