"""Table 7: round-trip latency with and without the TCP checksum.

Both ends negotiate the no-checksum connection via the Alternate
Checksum option (§4.2).  Reproduction criteria: negligible saving at 4
bytes, growing monotonically to ~41% at 8000 bytes.
"""

from conftest import once, run_sweep

from repro.core import paperdata
from repro.core.report import format_table, pct_change
from repro.kern.config import ChecksumMode, KernelConfig


def test_table7(benchmark, atm_baseline):
    no_cksum = once(benchmark, lambda: run_sweep(
        config=KernelConfig(checksum_mode=ChecksumMode.OFF)))

    rows = []
    savings = {}
    for size in paperdata.SIZES:
        with_ck = atm_baseline[size].mean_rtt_us
        without = no_cksum[size].mean_rtt_us
        savings[size] = pct_change(with_ck, without)
        rows.append((size, round(with_ck), round(without),
                     paperdata.TABLE7_NO_CHECKSUM[size],
                     round(savings[size], 1),
                     paperdata.TABLE7_SAVING_PCT[size]))
    print()
    print(format_table(
        "Table 7: round trips with and without the TCP checksum (us)",
        ("size", "cksum", "no-cksum", "(paper)", "sav%", "(paper)"),
        rows, width=10))

    # Negligible at 4 bytes, large at 8000 (paper: 0.1% .. 41%).
    assert savings[4] < 5
    # At 8000 bytes our saving (≈34%) trails the paper's 41% because the
    # serialized two-packet receive drain, not the checksum, bounds the
    # critical path once checksumming is gone (see EXPERIMENTS.md).
    assert abs(savings[8000] - paperdata.TABLE7_SAVING_PCT[8000]) <= 8
    # Saving grows monotonically with size through 4000 bytes; the
    # 8000-byte point dips a little in our model (drain-bound critical
    # path) but stays above 30%.
    ordered = [savings[s] for s in paperdata.SIZES[:-1]]
    assert all(b >= a - 1.0 for a, b in zip(ordered, ordered[1:]))
    assert savings[8000] >= 30
    # Absolute values within 15%.
    for size in paperdata.SIZES:
        assert abs(no_cksum[size].mean_rtt_us
                   / paperdata.TABLE7_NO_CHECKSUM[size] - 1) <= 0.15


def test_no_checksum_transfers_remain_correct(benchmark):
    """On a clean link, eliminating the checksum loses nothing: the
    echoed payloads still verify at the application."""
    results = once(benchmark, lambda: run_sweep(
        sizes=[1400, 8000],
        config=KernelConfig(checksum_mode=ChecksumMode.OFF)))
    for size, result in results.items():
        assert result.echo_errors == 0
