"""Beyond the tables: realistic RPC traffic mixes per kernel variant.

The paper picks its sizes from RPC traffic studies (§1.2); here whole
*mixes* — LRPC-style small-call traffic, NFS-like traffic with 8 KB
reads, and a bulk-heavy mix — are run against the kernel variants to
show which optimization matters for which workload (the designer's-eye
summary of the whole paper)."""

from conftest import once

from repro.core.report import format_table, pct_change
from repro.core.workloads import BULKY_MIX, LRPC_MIX, NFS_MIX, run_mix
from repro.kern.config import ChecksumMode, KernelConfig


def test_mix_latency_by_kernel_variant(benchmark):
    def run():
        variants = {
            "standard": None,
            "no-predict": KernelConfig(header_prediction=False),
            "integrated": KernelConfig(
                checksum_mode=ChecksumMode.INTEGRATED),
            "no-cksum": KernelConfig(checksum_mode=ChecksumMode.OFF),
        }
        out = {}
        for mix in (LRPC_MIX, NFS_MIX, BULKY_MIX):
            out[mix.name] = {
                name: run_mix(mix, config=config, iterations=4,
                              warmup=2).weighted_mean_us
                for name, config in variants.items()
            }
        return out

    out = once(benchmark, run)

    rows = []
    for mix_name, by_variant in out.items():
        std = by_variant["standard"]
        rows.append((mix_name, round(std),
                     round(pct_change(std, by_variant["no-predict"]), 1),
                     round(pct_change(std, by_variant["integrated"]), 1),
                     round(pct_change(std, by_variant["no-cksum"]), 1)))
    print()
    print(format_table(
        "Weighted-mean RPC latency by workload mix "
        "(saving% vs standard kernel)",
        ("mix", "std_us", "no-pred%", "integ%", "no-cksum%"), rows,
        width=12))

    # Small-call traffic: no optimization moves the needle much.
    lrpc = out["lrpc-small"]
    assert abs(pct_change(lrpc["standard"], lrpc["no-cksum"])) < 10
    assert pct_change(lrpc["standard"], lrpc["integrated"]) < 0
    # Bulk-heavy traffic: checksum work dominates; both checksum
    # optimizations win, elimination most.
    bulk = out["bulk-heavy"]
    assert pct_change(bulk["standard"], bulk["no-cksum"]) > 25
    assert pct_change(bulk["standard"], bulk["integrated"]) > 8
    # NFS-like sits in between.
    nfs = out["nfs-like"]
    assert (pct_change(lrpc["standard"], lrpc["no-cksum"])
            < pct_change(nfs["standard"], nfs["no-cksum"])
            < pct_change(bulk["standard"], bulk["no-cksum"]))
