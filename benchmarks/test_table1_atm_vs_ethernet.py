"""Table 1: comparison of ATM versus Ethernet round-trip latencies.

Regenerates both columns of Table 1 and the percentage-decrease column.
Reproduction criteria: ATM beats Ethernet at every size, the decrease is
in the paper's 45-55% band (±10 points), and absolute RTTs are within
±20% of the published values.
"""

from conftest import once, run_sweep

from repro.core import paperdata
from repro.core.report import format_table, pct_change


def test_table1(benchmark, atm_baseline):
    ethernet = once(benchmark, lambda: run_sweep(network="ethernet"))

    rows = []
    for size in paperdata.SIZES:
        eth = ethernet[size].mean_rtt_us
        atm = atm_baseline[size].mean_rtt_us
        decrease = pct_change(eth, atm)
        rows.append((size, round(eth), paperdata.TABLE1_ETHERNET_RTT[size],
                     round(atm), paperdata.TABLE1_ATM_RTT[size],
                     round(decrease), paperdata.TABLE1_DECREASE_PCT[size]))
    print()
    print(format_table(
        "Table 1: ATM vs Ethernet round-trip times (us)",
        ("size", "ether", "(paper)", "atm", "(paper)", "dec%", "(paper)"),
        rows))

    for size in paperdata.SIZES:
        eth = ethernet[size].mean_rtt_us
        atm = atm_baseline[size].mean_rtt_us
        # Who wins: ATM, at every size.
        assert atm < eth, f"ATM should beat Ethernet at {size}B"
        # By roughly the paper's factor.
        decrease = pct_change(eth, atm)
        assert abs(decrease - paperdata.TABLE1_DECREASE_PCT[size]) <= 12, (
            f"{size}B: decrease {decrease:.0f}% vs paper "
            f"{paperdata.TABLE1_DECREASE_PCT[size]}%")
        # Absolute values in range.
        assert abs(atm / paperdata.TABLE1_ATM_RTT[size] - 1) <= 0.20
        assert abs(eth / paperdata.TABLE1_ETHERNET_RTT[size] - 1) <= 0.20


def test_table1_monotonic_in_size(benchmark, atm_baseline):
    def check():
        rtts = [atm_baseline[s].mean_rtt_us for s in paperdata.SIZES]
        return rtts

    rtts = once(benchmark, check)
    assert rtts == sorted(rtts), "RTT must grow with transfer size"
