"""§2.2.1 in-text: mbuf allocate+free costs 'just over 7 µs'."""

from conftest import once

from repro.core import paperdata
from repro.core.microbench import mbuf_alloc_bench


def test_mbuf_alloc_free_cost(benchmark):
    mean_us = once(benchmark, mbuf_alloc_bench)
    print(f"\nmbuf allocate+free: {mean_us:.2f} us "
          f"(paper: just over {paperdata.MBUF_ALLOC_FREE_US} us)")
    assert paperdata.MBUF_ALLOC_FREE_US <= mean_us <= 7.6


def test_mbuf_cost_small_relative_to_transfer(benchmark, atm_baseline):
    """§2.2.1: 'mbuf manipulation is a small cost relative to the
    overall cost of sending or receiving data'."""
    def fraction():
        rtt = atm_baseline[500].mean_rtt_us
        # ~6 mbufs per 500-byte direction, four alloc/free rounds/RT.
        mbuf_cost = 7.2 * 6 * 2
        return mbuf_cost / rtt

    frac = once(benchmark, fraction)
    assert frac < 0.10
