"""Beyond the tables: bulk throughput under the three checksum modes.

§4.2 argues that checksum elimination "can also benefit throughput
oriented applications", and §4.1 notes the integrated loop's ~9 MB/s
memory ceiling.  This benchmark measures one-way TCP goodput on the
simulated testbed and confirms (a) the receiver CPU is the bottleneck,
(b) the checksum modes order exactly as the paper predicts, and (c)
absolute numbers sit in the era-plausible single-digit MB/s range, well
below both the 140 Mb/s wire and the 9 MB/s copy ceiling.
"""

from conftest import once

from repro.core.report import format_table
from repro.core.throughput import run_bulk_throughput
from repro.kern.config import ChecksumMode


def test_bulk_throughput_by_checksum_mode(benchmark):
    def run():
        return {
            mode: run_bulk_throughput(total_bytes=300_000,
                                      checksum_mode=mode)
            for mode in (ChecksumMode.STANDARD, ChecksumMode.INTEGRATED,
                         ChecksumMode.OFF)
        }

    results = once(benchmark, run)

    rows = [(mode.value, round(r.goodput_mb_s, 2),
             round(r.receiver_cpu_busy_frac * 100),
             round(r.sender_cpu_busy_frac * 100), r.retransmits)
            for mode, r in results.items()]
    print()
    print(format_table(
        "One-way bulk TCP goodput over ATM (300 KB)",
        ("mode", "MB/s", "rx_cpu%", "tx_cpu%", "rtx"), rows, width=10))

    std = results[ChecksumMode.STANDARD]
    integ = results[ChecksumMode.INTEGRATED]
    off = results[ChecksumMode.OFF]
    # Clean transfers.
    for r in results.values():
        assert r.retransmits == 0
    # §4.2 ordering: no checksum > integrated > standard.
    assert off.goodput_mb_s > integ.goodput_mb_s > std.goodput_mb_s
    # The receiver's drain/checksum path is the bottleneck.
    assert std.receiver_cpu_busy_frac > 0.7
    # All far below the 17.5 MB/s wire and the 9 MB/s copy ceiling:
    # protocol + driver costs dominate, the paper's overall story.
    assert off.goodput_mb_s < 9.0


def test_ethernet_throughput_wire_limited(benchmark):
    result = once(benchmark, lambda: run_bulk_throughput(
        total_bytes=120_000, network="ethernet"))
    print(f"\nEthernet bulk goodput: {result.goodput_mb_s:.2f} MB/s "
          f"(wire ceiling 1.25 MB/s)")
    assert result.goodput_mb_s < 1.25
    # On Ethernet the wire, not the CPU, is the limit.
    assert result.receiver_cpu_busy_frac < 0.9
