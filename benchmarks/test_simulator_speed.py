"""Host-machine performance of the simulator itself (pytest-benchmark).

These are the only benchmarks here that measure *wall-clock* speed; all
others regenerate the paper's simulated-time results.
"""

from repro.core.experiment import run_round_trip
from repro.sim import CPU, Priority, Simulator


def test_event_loop_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 20_000


def test_cpu_model_throughput(benchmark):
    def run_jobs():
        sim = Simulator()
        cpu = CPU(sim)
        for i in range(5_000):
            cpu.run(100, Priority.KERNEL if i % 2 else Priority.USER)
        sim.run()
        return cpu.jobs_completed

    assert benchmark(run_jobs) == 5_000


def test_full_stack_round_trip_speed(benchmark):
    def one_point():
        return run_round_trip(size=500, iterations=4, warmup=1)

    result = benchmark.pedantic(one_point, rounds=3, iterations=1)
    assert result.echo_errors == 0
