"""Ablations of design choices the paper discusses but did not measure.

Each ablation isolates one mechanism DESIGN.md calls out:

* PCB lookup structure under heavy connection load (§3's hash-table
  suggestion);
* the socket layer's 1 KB cluster-mbuf switchover (§2.2.1);
* the §4.1.1 partial-checksum extensions (segment prediction and
  multi-chunk sums) on a path whose MSS misaligns with page chunks;
* TX FIFO depth sensitivity of the overlapped ATM transmit;
* delayed ACKs vs ack-every-packet for RPC traffic.
"""

from conftest import once

from repro.core.experiment import run_round_trip
from repro.core.report import format_table, pct_change
from repro.hw import decstation_5000_200
from repro.kern.config import ChecksumMode, KernelConfig, PcbLookup
from repro.sim.engine import to_us
from repro.tcp.pcb import PCB, PCBTable


def test_ablation_pcb_structure_under_load(benchmark):
    """List vs hash demux cost as the connection count grows."""
    def run():
        costs = decstation_5000_200()
        out = {}
        for population in (10, 100, 1000):
            row = {}
            for mode in (PcbLookup.LIST, PcbLookup.HASH):
                table = PCBTable(costs, mode=mode, cache_enabled=False)
                # Oldest connection = worst case for the list.
                target = PCB(local_ip=1, local_port=9, remote_ip=2,
                             remote_port=9)
                table.insert(target)
                for i in range(population - 1):
                    table.insert(PCB(local_ip=1, local_port=100 + i,
                                     remote_ip=2, remote_port=9))
                _, cost_ns, _ = table.lookup(1, 9, 2, 9)
                row[mode.value] = to_us(cost_ns)
            out[population] = row
        return out

    out = once(benchmark, run)
    rows = [(n, round(v["list"], 1), round(v["hash"], 1))
            for n, v in out.items()]
    print()
    print(format_table("PCB demux cost by structure (worst-case, us)",
                       ("PCBs", "list", "hash"), rows))
    assert out[10]["list"] < 40
    assert out[1000]["list"] > 1000
    assert out[1000]["hash"] == out[10]["hash"]


def test_ablation_cluster_threshold(benchmark):
    """§2.2.1: sweep the socket layer's mbuf/cluster switchover around
    its 1 KB default; the latency step between 1000 and 1100 bytes
    exists only because of the threshold."""
    def run():
        out = {}
        for size in (900, 1000, 1100, 1300):
            out[size] = run_round_trip(size=size, iterations=6,
                                       warmup=2).mean_rtt_us
        return out

    out = once(benchmark, run)
    rows = [(s, round(v)) for s, v in out.items()]
    print()
    print(format_table("RTT around the 1 KB cluster threshold (us)",
                       ("size", "rtt"), rows))
    # Crossing the threshold (1000 -> 1100 bytes) costs *less* extra
    # latency than the previous 100-byte step, because cluster copies
    # and refcounted m_copy kick in.
    step_below = out[1000] - out[900]
    step_across = out[1100] - out[1000]
    assert step_across < step_below


def test_ablation_partial_checksum_extensions(benchmark):
    """§4.1.1's two suggested improvements, on the Ethernet path where
    the MSS (1460) misaligns with 4 KB copy chunks."""
    def run():
        base = KernelConfig(checksum_mode=ChecksumMode.INTEGRATED)
        variants = {
            "integrated (plain)": base,
            "+ segment prediction": base.with_overrides(
                socket_segment_prediction=True),
            "+ 4 chunks per mbuf": base.with_overrides(
                partial_chunks_per_mbuf=4),
        }
        out = {}
        for name, config in variants.items():
            result = run_round_trip(size=4000, network="ethernet",
                                    config=config, iterations=6, warmup=2)
            out[name] = (result.mean_rtt_us,
                         result.client_stats["partial_cksum_hits"],
                         result.client_stats["partial_cksum_misses"])
        return out

    out = once(benchmark, run)
    rows = [(name, round(rtt), hits, misses)
            for name, (rtt, hits, misses) in out.items()]
    print()
    print(format_table(
        "Integrated checksum on Ethernet, 4000-byte RPCs",
        ("variant", "rtt_us", "hits", "misses"), rows, width=22))

    plain = out["integrated (plain)"]
    predicted = out["+ segment prediction"]
    multi = out["+ 4 chunks per mbuf"]
    # Plain: the partials never line up with 1460-byte segments.
    assert plain[1] == 0
    # Prediction: they always do, and latency improves.
    assert predicted[2] == 0
    assert predicted[0] < plain[0]
    # Multi-chunk: partial coverage, latency between the two.
    assert predicted[0] < multi[0] < plain[0]


def test_ablation_tx_fifo_depth(benchmark):
    """How deep must the TCA-100's TX FIFO be for the driver's copy
    loop to never stall?  The calibrated copy rate nearly fills the
    real 36-cell FIFO on page-sized segments."""
    from repro.atm.adapter import ForeTca100
    from repro.core.testbed import build_atm_pair
    from repro.core.experiment import RoundTripBenchmark

    def run():
        out = {}
        for depth in (8, 16, 36, 292):
            original = ForeTca100.TX_FIFO_CELLS
            ForeTca100.TX_FIFO_CELLS = depth
            try:
                tb = build_atm_pair()
                bench = RoundTripBenchmark(tb, size=8000, iterations=4,
                                           warmup=1)
                result = bench.run()
                stall = (tb.client.interface.stats.tx_stall_ns
                         + tb.server.interface.stats.tx_stall_ns)
                out[depth] = (result.mean_rtt_us, to_us(stall))
            finally:
                ForeTca100.TX_FIFO_CELLS = original
        return out

    out = once(benchmark, run)
    rows = [(d, round(rtt), round(stall)) for d, (rtt, stall)
            in out.items()]
    print()
    print(format_table(
        "8000-byte RTT vs TX FIFO depth",
        ("cells", "rtt_us", "stall_us"), rows))
    # A tiny FIFO stalls the driver's copy loop behind the wire; the
    # real 36-cell FIFO is deep enough that stalls (almost) vanish.
    assert out[8][1] > out[16][1] > out[36][1] == 0
    # Round-trip latency, however, is insensitive: the wire drains
    # slower than the driver writes, so the last cell's departure is
    # wire-paced regardless — the stall only burns CPU.  (This is why
    # FORE could get away with a 36-cell FIFO.)
    assert abs(out[8][0] - out[36][0]) < out[36][0] * 0.02
    assert abs(out[36][0] - out[292][0]) < out[36][0] * 0.02


def test_ablation_delayed_acks(benchmark):
    """Delayed ACKs barely matter for RPC traffic (replies piggyback the
    ACK anyway), but ack-every-packet adds pure-ACK wire traffic."""
    def run():
        on = run_round_trip(size=500, iterations=8, warmup=2)
        off = run_round_trip(size=500, iterations=8, warmup=2,
                             config=KernelConfig(delayed_ack=False))
        return on, off

    on, off = once(benchmark, run)
    print(f"\nRTT with delayed acks: {on.mean_rtt_us:.0f} us; "
          f"ack-every-packet: {off.mean_rtt_us:.0f} us")
    # Ack-every-packet sends standalone ACKs for every data segment.
    assert off.server_stats["pure_acks_sent"] > \
        on.server_stats["pure_acks_sent"]
    # The latency difference stays small for the RPC pattern.
    assert abs(pct_change(on.mean_rtt_us, off.mean_rtt_us)) < 12
