"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and prints
it next to the published numbers.  The baseline ATM sweep is shared
across tables (the paper reuses its Table 1 ATM column as the baseline
of Tables 4, 6 and 7).
"""

import pytest

from repro.core.experiment import PAPER_SIZES, run_round_trip

#: Iterations per benchmark point (after warmup); the simulator is
#: deterministic so this is enough for stable means.
ITERATIONS = 6
WARMUP = 2


@pytest.fixture(scope="session")
def atm_baseline():
    """size -> RoundTripResult for the stock kernel over ATM."""
    return {
        size: run_round_trip(size=size, network="atm",
                             iterations=ITERATIONS, warmup=WARMUP)
        for size in PAPER_SIZES
    }


def run_sweep(network="atm", config=None, sizes=None,
              iterations=ITERATIONS, warmup=WARMUP):
    """One full size sweep; returns size -> RoundTripResult."""
    sizes = sizes if sizes is not None else PAPER_SIZES
    return {
        size: run_round_trip(size=size, network=network, config=config,
                             iterations=iterations, warmup=warmup)
        for size in sizes
    }


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
