"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and prints
it next to the published numbers.  The baseline ATM sweep is shared
across tables (the paper reuses its Table 1 ATM column as the baseline
of Tables 4, 6 and 7).

Sweeps go through :mod:`repro.perf.runner`, so they share the
content-addressed on-disk cache with the ``python -m repro`` tables
(both use iterations=6/warmup=2, hence identical cache keys), and
``pytest benchmarks/ --parallel N`` fans cache misses out over worker
processes.  ``--no-cache`` forces recomputation.  Either way results
are byte-identical to a cold serial run.
"""

import pytest

from repro.core.experiment import PAPER_SIZES  # noqa: F401  (re-export)
from repro.perf.runner import SweepOptions
from repro.perf.runner import run_sweep as _perf_run_sweep

#: Iterations per benchmark point (after warmup); the simulator is
#: deterministic so this is enough for stable means.  Kept equal to
#: ``ITER, WARM`` in ``repro.__main__`` so CLI and pytest share cache
#: entries.
ITERATIONS = 6
WARMUP = 2

#: Filled from the command line in :func:`pytest_configure`.
_OPTIONS = SweepOptions()


def pytest_addoption(parser):
    group = parser.getgroup("repro-perf")
    group.addoption(
        "--parallel", action="store", type=int, default=0,
        metavar="N",
        help="compute sweep cells on N worker processes (0 = serial)")
    group.addoption(
        "--no-cache", action="store_true", default=False,
        help="bypass the on-disk sweep result cache (.repro-cache)")


def pytest_configure(config):
    global _OPTIONS
    _OPTIONS = SweepOptions(
        parallel=config.getoption("--parallel", 0),
        use_cache=not config.getoption("--no-cache", False))


@pytest.fixture(scope="session")
def atm_baseline():
    """size -> RoundTripResult for the stock kernel over ATM."""
    return run_sweep(network="atm")


def run_sweep(network="atm", config=None, sizes=None,
              iterations=ITERATIONS, warmup=WARMUP):
    """One full size sweep; returns size -> RoundTripResult."""
    return _perf_run_sweep(network=network, config=config, sizes=sizes,
                          iterations=iterations, warmup=warmup,
                          options=_OPTIONS)


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
