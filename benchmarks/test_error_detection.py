"""§4.2.1: the error-detection layering experiment.

The paper's argument for optional checksum elimination on local ATM:

* link errors are caught by the AAL3/4 CRCs (end-to-end across
  switches);
* TCP detects orders of magnitude fewer errors than the link CRC once
  wide-area (gateway) traffic is excluded — and none at all on purely
  local traffic;
* applications with their own integrity checks lose nothing.

Regenerated with real bit flips against real CRC-10 / Internet-checksum
implementations.
"""

from conftest import once

from repro.core.errorstudy import run_error_study
from repro.core.report import format_table
from repro.kern.config import ChecksumMode


def test_error_detection_layering(benchmark):
    def run():
        scenarios = {}
        scenarios["local+link-noise"] = run_error_study(
            size=1400, iterations=40, p_link=0.15, seed=101)
        scenarios["wide-area-mix"] = run_error_study(
            size=1400, iterations=40, p_link=0.05, p_gateway=0.15,
            seed=102)
        scenarios["local-clean"] = run_error_study(
            size=1400, iterations=40, seed=103)
        return scenarios

    scen = once(benchmark, run)

    rows = []
    for name, r in scen.items():
        rows.append((name, r.total_injected, r.caught_by_link_check,
                     r.caught_by_tcp_checksum, r.caught_by_application))
    print()
    print(format_table(
        "Error detection by layer (counts over 40 RPCs)",
        ("scenario", "injected", "link-crc", "tcp-cksum", "app"), rows,
        width=17))

    # Link noise on local traffic: the AAL CRC catches essentially all
    # of it; TCP sees (almost) nothing -- the paper's two-orders claim.
    local = scen["local+link-noise"]
    assert local.caught_by_link_check >= 0.9 * local.injected_link
    assert local.caught_by_tcp_checksum <= max(
        1, local.caught_by_link_check // 10)

    # Wide-area mix: gateway-injected errors sail past the link check
    # and only the TCP checksum catches them.
    wan = scen["wide-area-mix"]
    assert wan.injected_gateway > 0
    assert wan.caught_by_tcp_checksum > 0

    # Purely local clean fiber: nothing for TCP to catch.
    clean = scen["local-clean"]
    assert clean.total_injected == 0
    assert clean.caught_by_tcp_checksum == 0


def test_checksum_off_is_safe_for_checking_applications(benchmark):
    """With the checksum eliminated and realistic (tiny) local error
    rates, the application-level check is the end-to-end backstop."""
    def run():
        return run_error_study(
            size=1400, iterations=40, p_controller=0.1,
            checksum_mode=ChecksumMode.OFF, seed=104)

    r = once(benchmark, run)
    # Errors reach the application (or vanish as header corruption and
    # get retransmitted) -- but the run completes with every transfer
    # ultimately delivered, because the application detects and the
    # protocol recovers what it can see.
    assert r.caught_by_tcp_checksum <= 2
    assert r.caught_by_application + r.undetected >= 1
