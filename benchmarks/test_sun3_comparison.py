"""§4.1 in-text: Sun-3 vs DECstation combined copy+checksum scaling.

The paper compares its integrated copy+checksum against Clark et al.'s
Sun-3 numbers at 1 KB: Sun-3 130/140/200 µs (checksum/copy/combined) vs
DECstation 96/91/111 µs; savings of 35% vs 68%, and an 80% overall
platform improvement.
"""

from conftest import once

from repro.core import paperdata
from repro.core.report import format_table
from repro.checksum import Bcopy, IntegratedCopyChecksum, OptimizedChecksum
from repro.hw import decstation_5000_200, sun_3


def test_sun3_vs_decstation(benchmark):
    def run():
        out = {}
        for machine in (sun_3(), decstation_5000_200()):
            kb = 1024
            cksum = OptimizedChecksum(machine).cost_us(kb)
            copy = Bcopy(machine).cost_us(kb)
            combined = IntegratedCopyChecksum(machine).cost_us(kb)
            out[machine.name] = (cksum, copy, combined)
        return out

    out = once(benchmark, run)
    sun = out["Sun-3"]
    dec = out["DECstation 5000/200"]

    print()
    print(format_table(
        "1 KB copy/checksum on two platforms (us)",
        ("machine", "cksum", "(p)", "copy", "(p)", "comb", "(p)"),
        [("Sun-3", round(sun[0]), paperdata.SUN3_1KB[0],
          round(sun[1]), paperdata.SUN3_1KB[1],
          round(sun[2]), paperdata.SUN3_1KB[2]),
         ("DEC5000", round(dec[0]), paperdata.DEC_1KB[0],
          round(dec[1]), paperdata.DEC_1KB[1],
          round(dec[2]), paperdata.DEC_1KB[2])], width=10))

    for sim, paper in zip(sun, paperdata.SUN3_1KB):
        assert abs(sim / paper - 1) <= 0.10
    for sim, paper in zip(dec, paperdata.DEC_1KB):
        assert abs(sim / paper - 1) <= 0.10

    # Savings as the paper computes them: (separate-combined)/combined.
    sun_saving = (sun[0] + sun[1] - sun[2]) / sun[2]
    dec_saving = (dec[0] + dec[1] - dec[2]) / dec[2]
    assert abs(sun_saving - 0.35) <= 0.06
    assert abs(dec_saving - 0.68) <= 0.09
    # "The overall improvement when switching ... is 80%."
    assert abs(sun[2] / dec[2] - 1 - 0.80) <= 0.10
