"""§3 in-text: PCB lookup cost microbenchmark.

The paper measures linear searches from 20 entries (26 µs) to 1000
entries (1280 µs), finding a clean 1.3 µs/entry line, and argues a hash
table eliminates the problem; both are regenerated here.
"""

import numpy as np
from conftest import once

from repro.core import paperdata
from repro.core.microbench import pcb_search_bench
from repro.core.report import format_table
from repro.hw import decstation_5000_200
from repro.kern.config import PcbLookup
from repro.sim.engine import to_us
from repro.tcp.pcb import PCB, PCBTable


def test_pcb_search_scales_linearly(benchmark):
    points = once(benchmark, pcb_search_bench)

    rows = [(p.entries, round(p.cost_us, 1)) for p in points]
    print()
    print(format_table("PCB linear search cost", ("entries", "cost_us"),
                       rows))

    by_entries = {p.entries: p.cost_us for p in points}
    for entries, paper_us in paperdata.PCB_SEARCH_POINTS:
        assert abs(by_entries[entries] / paper_us - 1) <= 0.15, (
            f"{entries} entries: {by_entries[entries]:.0f}us vs "
            f"paper {paper_us}us")

    # Linearity: a least-squares fit has slope ~1.3 us/entry and an
    # excellent correlation.
    xs = np.array([p.entries for p in points], dtype=float)
    ys = np.array([p.cost_us for p in points])
    slope, intercept = np.polyfit(xs, ys, 1)
    assert abs(slope - paperdata.PCB_COST_PER_ENTRY_US) < 0.1
    residuals = ys - (slope * xs + intercept)
    assert float(np.max(np.abs(residuals))) < 5.0


def test_hash_table_eliminates_lookup_cost(benchmark):
    """The paper's suggestion: 'a simple hash table implementation could
    eliminate the lookup problem entirely'."""
    def run():
        costs = decstation_5000_200()
        out = {}
        for n in (20, 1000):
            table = PCBTable(costs, mode=PcbLookup.HASH,
                             cache_enabled=False)
            target = PCB(local_ip=1, local_port=9999, remote_ip=2,
                         remote_port=9)
            table.insert(target)
            for i in range(n - 1):
                table.insert(PCB(local_ip=1, local_port=i + 1,
                                 remote_ip=2, remote_port=9))
            _, cost_ns, _ = table.lookup(1, 9999, 2, 9)
            out[n] = to_us(cost_ns)
        return out

    out = once(benchmark, run)
    assert out[20] == out[1000]
    assert out[1000] < 20  # vs ~1290 us for the list


def test_typical_pcb_populations_are_modest(benchmark):
    """§3: a mail server has <250 active PCBs, workstations <50 — so the
    cache savings with a short list are small by construction."""
    def run():
        costs = decstation_5000_200()
        return {n: costs.pcb_search_ns(n) / 1000.0 for n in (50, 250)}

    cost = once(benchmark, run)
    assert cost[50] < 100
    assert cost[250] < 400
