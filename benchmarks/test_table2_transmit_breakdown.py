"""Table 2: breakdown of BSD 4.4 alpha transmit-side latency.

Regenerates the per-layer transmit spans (User, TCP checksum/mcopy/
segment, IP, ATM) from the kernel's span instrumentation.
"""

from conftest import once

from repro.core import paperdata
from repro.core.breakdown import measure_breakdowns
from repro.core.report import format_table

ROWS = ("user", "checksum", "mcopy", "segment", "ip", "atm", "total")

#: Per-row relative tolerance vs the paper (the mcopy row is tiny and
#: noisy at small sizes; totals are tight).
TOLERANCE = {"user": 0.30, "checksum": 0.12, "mcopy": 0.45,
             "segment": 0.25, "ip": 0.10, "atm": 0.35, "total": 0.20}


def test_table2(benchmark):
    tx_rows, _ = once(benchmark, measure_breakdowns)

    print()
    table_rows = []
    for tx in tx_rows:
        paper = dict(zip(paperdata.TABLE2_ROWS,
                         paperdata.TABLE2_TRANSMIT[tx.size]))
        for row in ROWS:
            table_rows.append((tx.size, row, round(tx.row(row), 1),
                               paper[row]))
    print(format_table("Table 2: transmit-side breakdown (us)",
                       ("size", "layer", "sim", "paper"), table_rows,
                       width=10))

    for tx in tx_rows:
        paper = dict(zip(paperdata.TABLE2_ROWS,
                         paperdata.TABLE2_TRANSMIT[tx.size]))
        # The 8000-byte column is two segments; the paper's IP/segment
        # rows there reflect single-packet attribution (see
        # EXPERIMENTS.md), so shape checks are per-row tolerant.
        for row in ("user", "checksum", "total"):
            sim = tx.row(row)
            assert abs(sim / paper[row] - 1) <= TOLERANCE[row], (
                f"{tx.size}B {row}: sim {sim:.1f} vs paper {paper[row]}")


def test_table2_checksum_dominates_large_transfers(benchmark):
    tx_rows, _ = once(benchmark, lambda: measure_breakdowns(
        sizes=[4000, 8000]))
    for tx in tx_rows:
        # §2.3: data-touching operations dominate for large transfers.
        assert tx.checksum > tx.segment + tx.ip
        assert tx.checksum > 0.4 * tx.total


def test_table2_mcopy_drops_at_cluster_switchover(benchmark):
    tx_rows, _ = once(benchmark, lambda: measure_breakdowns(
        sizes=[500, 1400]))
    by_size = {t.size: t for t in tx_rows}
    # §2.2.1: the refcounted cluster copy makes mcopy *cheaper* at 1400
    # bytes than at 500 bytes.
    assert by_size[1400].mcopy < by_size[500].mcopy
    # And the copyin (User) also drops per the cluster switch.
    assert by_size[1400].user < by_size[500].user
