"""Table 4 / Figure 1: effects of header prediction.

Compares a kernel with the PCB cache and TCP input fast path disabled
against the stock kernel, reproducing the paper's findings:

* below 8000 bytes the improvement is small and roughly independent of
  size (only the PCB cache helps; the fast path never fires for
  round-trip RPC traffic with piggybacked ACKs);
* at 8000 bytes the fast path succeeds for the second segment of each
  transfer, so the benefit is visibly larger.
"""

from conftest import once, run_sweep

from repro.core import paperdata
from repro.core.report import ascii_chart, format_table, pct_change
from repro.kern.config import KernelConfig


def test_table4_and_figure1(benchmark, atm_baseline):
    no_predict = once(benchmark, lambda: run_sweep(
        config=KernelConfig(header_prediction=False)))

    rows = []
    for size in paperdata.SIZES:
        off = no_predict[size].mean_rtt_us
        on = atm_baseline[size].mean_rtt_us
        rows.append((size, round(off), paperdata.TABLE4_NO_PREDICTION[size],
                     round(on), paperdata.TABLE4_PREDICTION[size],
                     round(pct_change(off, on), 1)))
    print()
    print(format_table(
        "Table 4: round-trip times with and without header prediction",
        ("size", "no-pred", "(paper)", "pred", "(paper)", "dec%"), rows))
    print()
    print(ascii_chart(
        "Figure 1: Effects of Header Prediction (round-trip us)",
        paperdata.SIZES,
        {
            "with prediction": [atm_baseline[s].mean_rtt_us
                                for s in paperdata.SIZES],
            "without prediction": [no_predict[s].mean_rtt_us
                                   for s in paperdata.SIZES],
        }))

    for size in paperdata.SIZES:
        off = no_predict[size].mean_rtt_us
        on = atm_baseline[size].mean_rtt_us
        decrease = pct_change(off, on)
        # Prediction never hurts, and the improvement is small (<=10%),
        # matching the paper's 0-8% band.
        assert decrease >= -1.0, f"{size}B: prediction should not hurt"
        assert decrease <= 10.0, f"{size}B: improvement implausibly large"

    small_sizes = [4, 20, 80, 200, 500]
    small = [pct_change(no_predict[s].mean_rtt_us,
                        atm_baseline[s].mean_rtt_us) for s in small_sizes]
    # "basically independent of data size" below the two-segment case.
    assert max(small) - min(small) <= 5.0


def test_fast_path_hit_pattern(benchmark, atm_baseline):
    """The mechanism behind Table 4's 8000-byte row: the fast path
    succeeds only for the second segment of two-segment transfers."""
    def collect():
        hits = {}
        for size in (200, 4000, 8000):
            stats = atm_baseline[size].server_stats
            hits[size] = (stats["fast_path_data_hits"],
                          stats["data_segs_received"])
        return hits

    hits = once(benchmark, collect)
    # One hit per connection for the very first data segment (empty
    # pipe), none for the steady-state single-segment RPC exchanges...
    assert hits[200][0] <= 1
    assert hits[4000][0] <= 1
    # ...but roughly one hit for every two segments at 8000 bytes.
    data_hits, data_segs = hits[8000]
    assert data_hits >= data_segs // 2


def test_pcb_cache_savings_are_modest(benchmark):
    """§3 summary: 'the PCB cache accounted for only a small improvement
    in latency (about 4% on average)'."""
    def ratio():
        on = run_sweep(sizes=[4, 200]).items()
        off = run_sweep(sizes=[4, 200],
                        config=KernelConfig(header_prediction=False))
        savings = []
        for size, r in on:
            savings.append(pct_change(off[size].mean_rtt_us,
                                      r.mean_rtt_us))
        return savings

    savings = once(benchmark, ratio)
    # The paper itself records a -0.5% point (1400 bytes); the
    # benefit can vanish when the failed-prediction check overhead
    # cancels the cache hit.
    assert all(-2 <= s <= 8 for s in savings)
