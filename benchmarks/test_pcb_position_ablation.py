"""§3 ablation: where the connection sits in the PCB list.

The paper explains why header prediction's cache barely helps in its
testbed: "the TCP connection for our test program is likely to be near
the head of the PCB list since recently created connections go at the
head".  It also samples a departmental mail server with ~250 active
PCBs.  This ablation reproduces both regimes: with the benchmark
connection artificially sunk to the tail of a mail-server-sized list,
every cache miss pays the full linear search and the one-entry cache
suddenly earns its keep — while the hash-table alternative makes
position irrelevant, the paper's concluding point.
"""

from conftest import once

from repro.core.experiment import RoundTripBenchmark, SERVER_PORT
from repro.core.report import format_table, pct_change
from repro.core.testbed import build_atm_pair
from repro.kern.config import KernelConfig, PcbLookup


def rtt_with_population(population, header_prediction=True,
                        pcb_lookup=PcbLookup.LIST, sink_to_tail=False,
                        size=200):
    config = KernelConfig(header_prediction=header_prediction,
                          pcb_lookup=pcb_lookup,
                          daemon_pcbs=population)
    tb = build_atm_pair(config=config)
    bench = RoundTripBenchmark(tb, size=size, iterations=6, warmup=2)

    def sink_tails():
        """Move the benchmark connection's PCBs to the list tails (the
        'old connection on a busy server' case) and flush the caches."""
        for host in tb.hosts:
            table = host.tcp.pcbs
            active = [p for p in table.pcbs
                      if not p.is_listener and p.connection is not None]
            for pcb in active:
                table._list.remove(pcb)
                table._list.append(pcb)
            table._cache = None

    if sink_to_tail:
        # The connection establishes within the first couple of
        # simulated milliseconds; sink it before the measured phase.
        tb.sim.schedule(2_000_000, sink_tails)
    return bench.run()


def test_pcb_position_changes_predictions_value(benchmark):
    def runs():
        out = {}
        out["head10_pred"] = rtt_with_population(10, True).mean_rtt_us
        out["head10_nopred"] = rtt_with_population(10, False).mean_rtt_us
        out["tail250_pred"] = rtt_with_population(
            250, True, sink_to_tail=True).mean_rtt_us
        out["tail250_nopred"] = rtt_with_population(
            250, False, sink_to_tail=True).mean_rtt_us
        out["tail250_hash"] = rtt_with_population(
            250, False, pcb_lookup=PcbLookup.HASH,
            sink_to_tail=True).mean_rtt_us
        return out

    out = once(benchmark, runs)
    small = pct_change(out["head10_nopred"], out["head10_pred"])
    big = pct_change(out["tail250_nopred"], out["tail250_pred"])
    rows = [
        ("10 PCBs, near head", round(out["head10_nopred"]),
         round(out["head10_pred"]), round(small, 1)),
        ("250 PCBs, at tail", round(out["tail250_nopred"]),
         round(out["tail250_pred"]), round(big, 1)),
    ]
    print()
    print(format_table(
        "Header prediction's value vs PCB list position (200-byte RPCs)",
        ("scenario", "no-pred", "pred", "saving%"), rows, width=12))
    print(f"   250 PCBs with a hash table, no prediction: "
          f"{out['tail250_hash']:.0f} us")

    # The paper's testbed regime: negligible benefit.
    assert small < 4
    # The mail-server regime: the cache saves a ~250-entry search per
    # packet (~330 us each way): a double-digit improvement.
    assert big > 2 * max(small, 1.0)
    assert out["tail250_nopred"] - out["tail250_pred"] > 300
    # And the paper's punchline: a hash table gets (almost) all of that
    # benefit with no cache at all.
    assert out["tail250_hash"] < out["tail250_nopred"] * 0.85
