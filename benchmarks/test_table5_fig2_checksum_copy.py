"""Table 5 / Figure 2: copy and checksum measurements.

Regenerates the user-level microbenchmark of the four §4.1 algorithm
variants (ULTRIX checksum, bcopy, optimized checksum, integrated
copy+checksum) and the "Savings When Integrated" column.
"""

from conftest import once

from repro.core import paperdata
from repro.core.microbench import copy_checksum_bench
from repro.core.report import ascii_chart, format_table
from repro.hw import decstation_5000_200


def test_table5_and_figure2(benchmark):
    points = once(benchmark, copy_checksum_bench)

    rows = []
    for p in points:
        paper = paperdata.TABLE5_COPY_CHECKSUM[p.size]
        rows.append((p.size,
                     round(p.ultrix_checksum), paper[0],
                     round(p.ultrix_bcopy), paper[1],
                     round(p.optimized_checksum), paper[3],
                     round(p.integrated), paper[4],
                     round(p.savings_when_integrated_pct), paper[5]))
    print()
    print(format_table(
        "Table 5: copy and checksum measurements (us)",
        ("size", "ultrix", "(p)", "bcopy", "(p)", "opt", "(p)",
         "integ", "(p)", "sav%", "(p)"), rows, width=8))
    print()
    print(ascii_chart(
        "Figure 2: Copy and Checksum Measurements (us)",
        [p.size for p in points],
        {
            "copy & ULTRIX cksum": [p.ultrix_total for p in points],
            "copy & optimized cksum": [p.ultrix_bcopy
                                       + p.optimized_checksum
                                       for p in points],
            "integrated copy & cksum": [p.integrated for p in points],
        }))

    for p in points:
        paper = paperdata.TABLE5_COPY_CHECKSUM[p.size]
        assert abs(p.ultrix_checksum - paper[0]) <= max(2.0, 0.1 * paper[0])
        assert abs(p.ultrix_bcopy - paper[1]) <= max(2.0, 0.1 * paper[1])
        assert abs(p.optimized_checksum - paper[3]) <= max(2.0,
                                                           0.1 * paper[3])
        assert abs(p.integrated - paper[4]) <= max(2.5, 0.1 * paper[4])
        # Orderings: optimized < ultrix; integrated < copy+optimized.
        assert p.optimized_checksum < p.ultrix_checksum
        assert p.integrated < p.ultrix_bcopy + p.optimized_checksum

    # The large-size savings settle at the paper's ~40%.
    big = points[-1]
    assert abs(big.savings_when_integrated_pct - 40) <= 5


def test_integrated_bandwidth_limit(benchmark):
    """§4.1: 'the effective bandwidth limitation imposed by the combined
    copy and checksum loop is just above 9 MB/s'."""
    def bandwidth():
        return decstation_5000_200().copy_cksum_integrated.bandwidth_mb_s(
            8000)

    bw = once(benchmark, bandwidth)
    assert 9.0 < bw < 10.0
